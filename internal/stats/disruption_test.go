package stats

import (
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

// A well-behaved flow: constant 10ms latency, no loss, no reordering.
func TestFlowTrackerCleanFlow(t *testing.T) {
	f := NewFlowTracker("ch->mh")
	for i := 0; i < 10; i++ {
		send := time.Duration(i*20) * time.Millisecond
		f.Sent(uint64(i), at(send))
		f.Received(uint64(i), at(send+10*time.Millisecond))
	}
	sent, recv, lost, reorders := f.Totals()
	if sent != 10 || recv != 10 || lost != 0 || reorders != 0 {
		t.Fatalf("totals: sent=%d recv=%d lost=%d reorders=%d", sent, recv, lost, reorders)
	}
	if f.Baseline() != 10*time.Millisecond {
		t.Fatalf("baseline = %v", f.Baseline())
	}
	reports := f.Analyze([]Window{{Kind: "handoff.cold", Start: at(50 * time.Millisecond), End: at(90 * time.Millisecond)}}, 0)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	r := reports[0]
	// Sends at 60ms and 80ms fall inside the window.
	if r.PacketsSent != 2 || r.PacketsLost != 0 || r.MaxLatencySpikeNS != 0 || r.ReorderCount != 0 {
		t.Fatalf("clean flow must report no disruption: %+v", r)
	}
	// Steady 20ms arrival spacing is the worst "blackout".
	if r.BlackoutNS != int64(20*time.Millisecond) {
		t.Fatalf("blackout = %v", time.Duration(r.BlackoutNS))
	}
}

// A handoff window in which packets die, one straggler arrives very late,
// and a reordered pair lands.
func TestFlowTrackerDisruptedFlow(t *testing.T) {
	f := NewFlowTracker("ch->mh")
	ms := func(n int) sim.Time { return at(time.Duration(n) * time.Millisecond) }

	// Pre-handoff: seq 0..4, sent every 20ms from t=0, 10ms latency.
	for i := 0; i <= 4; i++ {
		f.Sent(uint64(i), ms(i*20))
		f.Received(uint64(i), ms(i*20+10))
	}
	// Handoff window [95ms, 160ms]: seq 5 (t=100) and 6 (t=120) lost,
	// seq 7 (t=140) delayed to t=200 (60ms latency).
	f.Sent(5, ms(100))
	f.Sent(6, ms(120))
	f.Sent(7, ms(140))
	// Post-handoff: seq 8 (t=160) overtakes 7; 9 is clean.
	f.Sent(8, ms(160))
	f.Received(8, ms(170))
	f.Received(7, ms(200)) // arrives after 8: reordered, depth 1
	f.Sent(9, ms(180))
	f.Received(9, ms(190))

	sent, recv, lost, reorders := f.Totals()
	if sent != 10 || recv != 8 || lost != 2 || reorders != 1 {
		t.Fatalf("totals: sent=%d recv=%d lost=%d reorders=%d", sent, recv, lost, reorders)
	}
	if f.Baseline() != 10*time.Millisecond {
		t.Fatalf("baseline = %v", f.Baseline())
	}

	reports := f.Analyze([]Window{{Kind: "handoff.cold", Start: ms(95), End: ms(160)}}, 20*time.Millisecond)
	r := reports[0]
	// Grace [75ms, 180ms] covers sends at 80..180 → seq 4..9.
	if r.PacketsSent != 6 {
		t.Fatalf("packets sent in window = %d, want 6", r.PacketsSent)
	}
	if r.PacketsLost != 2 {
		t.Fatalf("packets lost = %d, want 2", r.PacketsLost)
	}
	if r.MaxLatencyNS != int64(60*time.Millisecond) || r.MaxLatencySpikeNS != int64(50*time.Millisecond) {
		t.Fatalf("latency: max=%v spike=%v",
			time.Duration(r.MaxLatencyNS), time.Duration(r.MaxLatencySpikeNS))
	}
	if r.ReorderCount != 1 || r.MaxReorderDepth != 1 {
		t.Fatalf("reorder: count=%d depth=%d", r.ReorderCount, r.MaxReorderDepth)
	}
	// Receiver dead air: last pre-window arrival t=90, next arrival t=170.
	if r.BlackoutNS != int64(80*time.Millisecond) {
		t.Fatalf("blackout = %v, want 80ms", time.Duration(r.BlackoutNS))
	}

	table := FormatDisruption(reports)
	if !strings.Contains(table, "handoff.cold") || !strings.Contains(table, "80ms") {
		t.Fatalf("table:\n%s", table)
	}
}

// A flow that never recovers: the blackout extends to the last send.
func TestFlowTrackerTerminalBlackout(t *testing.T) {
	f := NewFlowTracker("x")
	ms := func(n int) sim.Time { return at(time.Duration(n) * time.Millisecond) }
	f.Sent(0, ms(0))
	f.Received(0, ms(10))
	for i := 1; i <= 5; i++ {
		f.Sent(uint64(i), ms(i*20)) // all lost
	}
	r := f.Analyze([]Window{{Kind: "handoff.cold", Start: ms(15), End: ms(100)}}, 0)[0]
	if r.PacketsLost != 5 {
		t.Fatalf("lost = %d", r.PacketsLost)
	}
	// Dead air from the arrival at 10ms to the final send at 100ms.
	if r.BlackoutNS != int64(90*time.Millisecond) {
		t.Fatalf("blackout = %v, want 90ms", time.Duration(r.BlackoutNS))
	}
}

func TestFlowTrackerEdgeCases(t *testing.T) {
	f := NewFlowTracker("x")
	if f.Baseline() != 0 {
		t.Fatal("empty baseline must be zero")
	}
	if got := f.Analyze([]Window{{Kind: "w", Start: 0, End: at(time.Second)}}, 0); got[0].PacketsSent != 0 || got[0].BlackoutNS != 0 {
		t.Fatalf("empty flow report: %+v", got[0])
	}
	f.Sent(1, at(time.Millisecond))
	f.Sent(1, at(2*time.Millisecond))     // duplicate send ignored
	f.Received(9, at(3*time.Millisecond)) // unknown seq ignored
	f.Received(1, at(4*time.Millisecond))
	f.Received(1, at(5*time.Millisecond)) // duplicate arrival ignored
	sent, recv, lost, _ := f.Totals()
	if sent != 1 || recv != 1 || lost != 0 {
		t.Fatalf("dup/unknown handling: sent=%d recv=%d lost=%d", sent, recv, lost)
	}
}
