// Package stats provides the measurement primitives the experiment
// harnesses use: counters, duration histograms with summary statistics,
// per-iteration loss tallies, and the bucketized "packets lost per
// iteration" histograms of the paper's Figure 6.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series accumulates duration samples and reports summary statistics.
type Series struct {
	name    string
	samples []time.Duration
}

// NewSeries creates a named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample.
func (s *Series) Add(d time.Duration) { s.samples = append(s.samples, d) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Samples returns a copy of the samples.
func (s *Series) Samples() []time.Duration {
	return append([]time.Duration(nil), s.samples...)
}

// Mean returns the arithmetic mean, or zero for an empty series.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.samples {
		sum += v
	}
	return sum / time.Duration(len(s.samples))
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.samples {
		d := float64(v) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

// Min returns the smallest sample.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := s.Samples()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String summarizes the series the way the paper reports Figure 7 rows:
// mean with standard deviation in parentheses.
func (s *Series) String() string {
	return fmt.Sprintf("%s: %.2fms (%.2fms) n=%d",
		s.name,
		float64(s.Mean())/float64(time.Millisecond),
		float64(s.StdDev())/float64(time.Millisecond),
		s.N())
}

// LossHistogram tallies iterations by how many packets each lost — the
// exact presentation of the paper's Figure 6 bar charts.
type LossHistogram struct {
	name   string
	counts map[int]int
	total  int
}

// NewLossHistogram creates a named histogram.
func NewLossHistogram(name string) *LossHistogram {
	return &LossHistogram{name: name, counts: make(map[int]int)}
}

// Name returns the histogram name.
func (h *LossHistogram) Name() string { return h.name }

// Record tallies one iteration that lost n packets.
func (h *LossHistogram) Record(n int) {
	h.counts[n]++
	h.total++
}

// Iterations returns the number of recorded iterations.
func (h *LossHistogram) Iterations() int { return h.total }

// Count returns how many iterations lost exactly n packets.
func (h *LossHistogram) Count(n int) int { return h.counts[n] }

// MaxLoss returns the largest per-iteration loss observed.
func (h *LossHistogram) MaxLoss() int {
	m := 0
	for n := range h.counts {
		if n > m {
			m = n
		}
	}
	return m
}

// TotalLost returns the sum of losses across iterations.
func (h *LossHistogram) TotalLost() int {
	sum := 0
	for n, c := range h.counts {
		sum += n * c
	}
	return sum
}

// Rows returns (loss, iterations) pairs in ascending loss order, including
// zero-count gaps up to MaxLoss, matching a bar chart's x-axis.
func (h *LossHistogram) Rows() [][2]int {
	var rows [][2]int
	for n := 0; n <= h.MaxLoss(); n++ {
		rows = append(rows, [2]int{n, h.counts[n]})
	}
	return rows
}

// String renders an ASCII bar chart in the style of Figure 6.
func (h *LossHistogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d iterations)\n", h.name, h.total)
	for _, row := range h.Rows() {
		fmt.Fprintf(&b, "  %2d lost | %-3d %s\n", row[0], row[1], strings.Repeat("#", row[1]))
	}
	return b.String()
}

// Counter is a named monotonic counter set.
type Counter struct {
	counts map[string]uint64
	order  []string
}

// NewCounter creates an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta uint64) {
	if _, ok := c.counts[name]; !ok {
		c.order = append(c.order, name)
	}
	c.counts[name] += delta
}

// Get returns the named counter's value.
func (c *Counter) Get(name string) uint64 { return c.counts[name] }

// String lists counters in first-use order.
func (c *Counter) String() string {
	var b strings.Builder
	for _, name := range c.order {
		fmt.Fprintf(&b, "%s=%d ", name, c.counts[name])
	}
	return strings.TrimSpace(b.String())
}
