package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesSummary(t *testing.T) {
	s := NewSeries("reg")
	for _, v := range []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond} {
		s.Add(v)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 4*time.Millisecond {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2*time.Millisecond || s.Max() != 6*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population stddev of {2,4,6} is sqrt(8/3) ≈ 1.633ms.
	sd := s.StdDev()
	if sd < 1500*time.Microsecond || sd > 1800*time.Microsecond {
		t.Fatalf("StdDev = %v", sd)
	}
	if !strings.Contains(s.String(), "4.00ms") || !strings.Contains(s.String(), "n=3") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := NewSeries("p")
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("P100 = %v", got)
	}
}

// Property: mean lies within [min, max] and stddev is non-negative for any
// sample set.
func TestPropertySeriesInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("q")
		for _, v := range raw {
			s.Add(time.Duration(v % 1_000_000))
		}
		m := s.Mean()
		return m >= s.Min() && m <= s.Max() && s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLossHistogram(t *testing.T) {
	h := NewLossHistogram("cold wired->wireless")
	for _, loss := range []int{0, 1, 1, 3, 0, 0, 1, 2, 0, 0} {
		h.Record(loss)
	}
	if h.Iterations() != 10 {
		t.Fatalf("Iterations = %d", h.Iterations())
	}
	if h.Count(0) != 5 || h.Count(1) != 3 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Fatalf("counts wrong: %v", h.Rows())
	}
	if h.MaxLoss() != 3 {
		t.Fatalf("MaxLoss = %d", h.MaxLoss())
	}
	if h.TotalLost() != 8 {
		t.Fatalf("TotalLost = %d", h.TotalLost())
	}
	rows := h.Rows()
	if len(rows) != 4 || rows[2] != [2]int{2, 1} {
		t.Fatalf("Rows = %v", rows)
	}
	if !strings.Contains(h.String(), "10 iterations") {
		t.Fatalf("String = %q", h.String())
	}
}

// Property: iterations equals the sum of row counts, and total lost equals
// the weighted sum, for arbitrary loss sequences.
func TestPropertyHistogramConsistency(t *testing.T) {
	f := func(losses []uint8) bool {
		h := NewLossHistogram("x")
		want := 0
		for _, l := range losses {
			h.Record(int(l % 16))
			want += int(l % 16)
		}
		sum := 0
		for _, row := range h.Rows() {
			sum += row[1]
		}
		return sum == h.Iterations() && h.TotalLost() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("sent", 3)
	c.Inc("lost", 1)
	c.Inc("sent", 2)
	if c.Get("sent") != 5 || c.Get("lost") != 1 || c.Get("other") != 0 {
		t.Fatalf("counter values wrong: %s", c)
	}
	if c.String() != "sent=5 lost=1" {
		t.Fatalf("String = %q", c.String())
	}
}
