package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// --- A1: routing optimizations (Section 3.2) ------------------------------

// A1Result quantifies the triangle-route optimization: round-trip latency
// to a correspondent under the basic (tunnel-everything) protocol versus
// the triangle route, the 20-byte encapsulation overhead, and the
// transit-filter failure mode with its probe-and-fall-back recovery.
type A1Result struct {
	TunnelRTTLocal    *stats.Series // CH on the visited subnet, reverse-tunneled
	TriangleRTTLocal  *stats.Series // CH on the visited subnet, triangle
	TunnelRTTCampus   *stats.Series
	TriangleRTTCampus *stats.Series
	EncapOverhead     int // bytes added per tunneled packet

	// Transit-filter scenario: sent/delivered before and after the probe
	// caches the fallback policy.
	FilteredTriangleDelivered int
	FilteredTriangleSent      int
	FallbackDelivered         int
	FallbackSent              int

	// Export holds snapshots for the main and transit-filter testbeds.
	Export *Export
}

func (r *A1Result) String() string {
	var b strings.Builder
	b.WriteString("A1: triangle route vs tunnel (Section 3.2)\n")
	b.WriteString("paper: triangle improves the route and removes 20B+ encapsulation, but transit filters break it\n")
	for _, s := range []*stats.Series{r.TunnelRTTLocal, r.TriangleRTTLocal, r.TunnelRTTCampus, r.TriangleRTTCampus} {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	fmt.Fprintf(&b, "  encapsulation overhead: %d bytes per packet\n", r.EncapOverhead)
	fmt.Fprintf(&b, "  with transit filter: triangle delivered %d/%d; after probe fallback: %d/%d\n",
		r.FilteredTriangleDelivered, r.FilteredTriangleSent, r.FallbackDelivered, r.FallbackSent)
	return b.String()
}

// RunA1 measures the routing optimizations.
func RunA1(seed int64, samples int) (*A1Result, error) {
	res := &A1Result{
		TunnelRTTLocal:    stats.NewSeries("tunnel RTT, CH on visited net"),
		TriangleRTTLocal:  stats.NewSeries("triangle RTT, CH on visited net"),
		TunnelRTTCampus:   stats.NewSeries("tunnel RTT, CH on campus"),
		TriangleRTTCampus: stats.NewSeries("triangle RTT, CH on campus"),
		EncapOverhead:     ip.HeaderLen,
	}
	tb := New(seed)
	defer tb.Close()
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)

	startUDPEcho(tb.CH, 7)
	startUDPEcho(tb.CampusCH, 7)

	measure := func(dst ip.Addr, policy mip.Policy, series *stats.Series) error {
		tb.MH.Policy().SetHost(dst, policy)
		for i := 0; i < samples; i++ {
			if err := udpRTT(tb, dst, series); err != nil {
				return err
			}
		}
		return nil
	}
	if err := measure(CHAddr, mip.PolicyTunnel, res.TunnelRTTLocal); err != nil {
		return nil, err
	}
	if err := measure(CHAddr, mip.PolicyTriangle, res.TriangleRTTLocal); err != nil {
		return nil, err
	}
	if err := measure(CampusCHAddr, mip.PolicyTunnel, res.TunnelRTTCampus); err != nil {
		return nil, err
	}
	if err := measure(CampusCHAddr, mip.PolicyTriangle, res.TriangleRTTCampus); err != nil {
		return nil, err
	}

	// Transit-filter scenario, on a fresh testbed.
	tb2 := New(seed + 1)
	defer tb2.Close()
	tb2.Router.AddFilter(func(in, out *stack.Iface, pkt *ip.Packet) stack.Verdict {
		if in.Prefix() == DeptPrefix && !DeptPrefix.Contains(pkt.Src) {
			return stack.Drop // forbid transit traffic from the visited net
		}
		return stack.Accept
	})
	tb2.MoveEthTo(tb2.DeptNet)
	tb2.MustConnectForeign(tb2.Eth)
	served := startUDPEcho(tb2.CampusCH, 7)

	tb2.MH.Policy().SetHost(CampusCHAddr, mip.PolicyTriangle)
	cli, err := tb2.MHTS.UDP(ip.Unspecified, 0, nil)
	if err != nil {
		return nil, err
	}
	res.FilteredTriangleSent = samples
	for i := 0; i < samples; i++ {
		cli.SendTo(CampusCHAddr, 7, []byte("blocked?"))
		tb2.Run(500 * time.Millisecond)
	}
	res.FilteredTriangleDelivered = *served

	// The probe detects the filter and reverts the policy.
	tb2.MH.ProbeTriangle(CampusCHAddr, 2*time.Second, nil)
	tb2.Run(10 * time.Second)
	before := *served
	res.FallbackSent = samples
	for i := 0; i < samples; i++ {
		cli.SendTo(CampusCHAddr, 7, []byte("tunneled"))
		tb2.Run(500 * time.Millisecond)
	}
	res.FallbackDelivered = *served - before
	res.Export = &Export{Experiment: "a1", Seed: seed, Snapshots: []*metrics.Snapshot{
		tb.SnapshotMetrics("routing"), tb2.SnapshotMetrics("transit-filter"),
	}}
	return res, nil
}

// startUDPEcho installs an echo responder and returns a served counter.
func startUDPEcho(ts *transport.Stack, port uint16) *int {
	count := 0
	var sock *transport.UDPSocket
	sock, err := ts.UDP(ip.Unspecified, port, func(d transport.Datagram) {
		count++
		sock.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		panic(err)
	}
	return &count
}

// udpRTT sends one datagram from the mobile host (unbound, so subject to
// mobile IP) and records the echo round-trip time.
func udpRTT(tb *Testbed, dst ip.Addr, series *stats.Series) error {
	var rtt time.Duration
	got := false
	var start sim.Time
	sock, err := tb.MHTS.UDP(ip.Unspecified, 0, func(transport.Datagram) {
		rtt = tb.Loop.Now().Sub(start)
		got = true
	})
	if err != nil {
		return err
	}
	defer sock.Close()
	start = tb.Loop.Now()
	sock.SendTo(dst, 7, []byte("rtt"))
	tb.Run(3 * time.Second)
	if got {
		series.Add(rtt)
	}
	return nil
}

// --- A2: foreign-agent forwarding vs collocated care-of (Section 5.1) -----

// A2Result measures the packet-loss trade-off the paper discusses: during
// a move off a high-latency (radio) network, a foreign agent that receives
// the mobile host's new location can forward straggler packets that a
// collocated care-of address would simply lose.
type A2Result struct {
	WithoutFA *stats.LossHistogram
	WithFA    *stats.LossHistogram
	Forwarded uint64 // stragglers the FA re-tunneled across all iterations
	// Export holds one snapshot per variant.
	Export *Export
}

func (r *A2Result) String() string {
	var b strings.Builder
	b.WriteString("A2: handoff loss, collocated care-of vs foreign agent (Section 5.1)\n")
	b.WriteString("paper: 'foreign agents may somewhat reduce packet loss' by forwarding stragglers\n")
	b.WriteString(r.WithoutFA.String())
	b.WriteString(r.WithFA.String())
	fmt.Fprintf(&b, "stragglers forwarded by the FA: %d\n", r.Forwarded)
	fmt.Fprintf(&b, "mean loss: without FA %.1f, with FA %.1f\n",
		float64(r.WithoutFA.TotalLost())/float64(r.WithoutFA.Iterations()),
		float64(r.WithFA.TotalLost())/float64(r.WithFA.Iterations()))
	return b.String()
}

// RunA2 measures handoffs off the slow remote net onto the department
// Ethernet, with and without a foreign agent on the old network. With a
// foreign agent the mobile host announces its departure (the agent
// buffers) and then supplies its new care-of address (the agent forwards
// the buffered packets and any further stragglers).
func RunA2(seed int64, iterations int) (*A2Result, error) {
	res := &A2Result{
		WithoutFA: stats.NewLossHistogram("cold slow-net->wired, collocated care-of"),
		WithFA:    stats.NewLossHistogram("cold slow-net->wired, foreign agent on old net"),
		Export:    &Export{Experiment: "a2", Seed: seed},
	}
	const probeInterval = 50 * time.Millisecond

	// wan0 is the interface the mobile host uses on the slow net.
	addWAN := func(tb *Testbed) *mip.ManagedIface {
		d := link.NewDevice(tb.Loop, "mh-wan", EthBringUp, EthBringUpJitter)
		d.Attach(tb.SlowNet)
		mi, err := tb.MH.AddInterface("wan0", d, false, &mip.StaticConfig{
			Addr:    MHSlowAddr,
			Prefix:  SlowPrefix,
			Gateway: RouterSlowAddr,
		})
		if err != nil {
			panic(err)
		}
		return mi
	}

	// Without FA: collocated care-of on the slow net.
	{
		tb := New(seed)
		tb.MoveEthTo(tb.DeptNet)
		wan := addWAN(tb)
		tb.MustConnectForeign(wan)
		probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, probeInterval)
		if err != nil {
			return nil, err
		}
		for i := 0; i < iterations; i++ {
			probe.Start()
			tb.Run(2 * time.Second)
			sb, rb := quiesce(tb, probe)
			probe.Start()
			done := false
			tb.MH.ColdSwitch(tb.Eth, func(err error) { done = err == nil })
			if !runUntilDone(tb, &done, 30*time.Second) {
				return nil, fmt.Errorf("A2 no-FA iteration %d failed", i)
			}
			sa, ra := quiesce(tb, probe)
			res.WithoutFA.Record(LossBetween(sb, rb, sa, ra))
			probe.Start()
			restore := false
			tb.MH.ColdSwitch(wan, func(error) { restore = true })
			if !runUntilDone(tb, &restore, 30*time.Second) {
				return nil, fmt.Errorf("A2 no-FA restore %d failed", i)
			}
		}
		probe.Stop()
		res.Export.Snapshots = append(res.Export.Snapshots, tb.SnapshotMetrics("collocated"))
		tb.Close()
	}

	// With FA on the slow net.
	{
		tb := New(seed + 1)
		tb.MoveEthTo(tb.DeptNet)
		wan := addWAN(tb)
		fa, err := newSlowNetFA(tb)
		if err != nil {
			return nil, err
		}
		attachViaFA := func() error {
			ok := false
			tb.MH.ConnectViaForeignAgent(wan, fa.Addr(), func(err error) { ok = err == nil })
			if !runUntilDone(tb, &ok, 30*time.Second) {
				return fmt.Errorf("A2: FA attach failed")
			}
			return nil
		}
		if err := attachViaFA(); err != nil {
			return nil, err
		}
		probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, probeInterval)
		if err != nil {
			return nil, err
		}
		for i := 0; i < iterations; i++ {
			probe.Start()
			tb.Run(2 * time.Second)
			sb, rb := quiesce(tb, probe)
			probe.Start()
			// Departure warning: the agent buffers once the notice
			// arrives. The lead time models the "sufficient warning" the
			// paper says makes smooth switches possible — and the notice
			// must clear the mobile host's own output path before the
			// interface is torn down.
			tb.MH.AnnounceDeparture(fa.Addr(), 30*time.Second)
			tb.Run(200 * time.Millisecond)
			done := false
			tb.MH.ColdSwitch(tb.Eth, func(err error) {
				if err == nil {
					done = true
					// Hand the agent the new care-of address; it flushes
					// its buffer and keeps forwarding stragglers.
					tb.MH.NotifyPreviousFA(fa.Addr(), tb.MH.CareOf(), 30*time.Second)
				}
			})
			if !runUntilDone(tb, &done, 30*time.Second) {
				return nil, fmt.Errorf("A2 FA iteration %d failed", i)
			}
			sa, ra := quiesce(tb, probe)
			res.WithFA.Record(LossBetween(sb, rb, sa, ra))
			probe.Start()
			tb.MH.Disconnect(tb.Eth)
			if err := attachViaFA(); err != nil {
				return nil, err
			}
		}
		probe.Stop()
		res.Forwarded = fa.Stats().Forwarded
		res.Export.Snapshots = append(res.Export.Snapshots, tb.SnapshotMetrics("foreign-agent"))
		tb.Close()
	}
	return res, nil
}

// newSlowNetFA places a foreign agent host on the slow remote subnet.
func newSlowNetFA(tb *Testbed) (*mip.ForeignAgent, error) {
	h := stack.NewHost(tb.Loop, "fa-slow", stack.Config{
		InputDelay:  CHProcDelay,
		OutputDelay: CHProcDelay,
	})
	d := link.NewDevice(tb.Loop, "fa-eth", 0, 0)
	d.Attach(tb.SlowNet)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, FASlowAddr, SlowPrefix, stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	h.AddDefaultRoute(RouterSlowAddr, ifc)
	tb.Loop.RunFor(0)
	return mip.NewForeignAgent(transport.NewStack(h), mip.ForeignAgentConfig{
		Iface:           ifc,
		ProcessingDelay: CHProcDelay,
		Tracer:          tb.Tracer,
	})
}

// --- A3: home-agent scalability ------------------------------------------

// A3Row is one fleet size's registration-latency measurement.
type A3Row struct {
	MobileHosts  int
	Registered   int
	Latency      *stats.Series // per-host request->reply
	TotalElapsed time.Duration // first request sent -> last reply received
}

// A3Result supports the paper's claim that "the home agent should be able
// to deal with a large number of mobile hosts simultaneously".
type A3Result struct {
	Rows []A3Row
	// Export holds one snapshot per fleet size.
	Export *Export
}

func (r *A3Result) String() string {
	var b strings.Builder
	b.WriteString("A3: home-agent scalability (Section 4's closing claim)\n")
	b.WriteString("  hosts | registered | req->reply mean | p95 | all done in\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %5d | %10d | %14v | %v | %v\n",
			row.MobileHosts, row.Registered,
			row.Latency.Mean().Round(10*time.Microsecond),
			row.Latency.Percentile(95).Round(10*time.Microsecond),
			row.TotalElapsed.Round(time.Millisecond))
	}
	return b.String()
}

// RunA3 registers fleets of visiting mobile hosts against one home agent.
func RunA3(seed int64, fleets []int) (*A3Result, error) {
	res := &A3Result{Export: &Export{Experiment: "a3", Seed: seed}}
	for _, n := range fleets {
		row, snap, err := runA3Fleet(seed, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.Export.Snapshots = append(res.Export.Snapshots, snap)
	}
	return res, nil
}

func runA3Fleet(seed int64, n int) (A3Row, *metrics.Snapshot, error) {
	tb := New(seed + int64(n))
	defer tb.Close()
	row := A3Row{MobileHosts: n, Latency: stats.NewSeries(fmt.Sprintf("reg latency n=%d", n))}

	tracer := trace.New(tb.Loop)
	type fleetMH struct {
		m  *mip.MobileHost
		mi *mip.ManagedIface
	}
	var fleet []fleetMH
	for i := 0; i < n; i++ {
		h := stack.NewHost(tb.Loop, fmt.Sprintf("mh%03d", i), stack.Config{
			InputDelay:  MHProcDelay,
			OutputDelay: MHProcDelay,
		})
		ts := transport.NewStack(h)
		m := mip.NewMobileHost(ts, mip.MobileHostConfig{
			HomeAddr:   ip.Addr{36, 135, 1, byte(i + 1)},
			HomePrefix: HomePrefix,
			HomeAgent:  RouterHomeAddr,
			Lifetime:   RegLifetime,
			Tracer:     tracer,
		})
		d := link.NewDevice(tb.Loop, "eth", 0, 0)
		d.Attach(tb.DeptNet)
		mi, err := m.AddInterface("eth0", d, false, &mip.StaticConfig{
			Addr:    ip.Addr{36, 8, 2, byte(i + 1)},
			Prefix:  DeptPrefix,
			Gateway: RouterDeptAddr,
		})
		if err != nil {
			return row, nil, err
		}
		fleet = append(fleet, fleetMH{m, mi})
	}
	start := tb.Loop.Now()
	registered := 0
	var allDoneAt sim.Time
	for i, f := range fleet {
		f := f
		// Stagger slightly so the burst is realistic, not lockstep.
		tb.Loop.Schedule(time.Duration(i)*100*time.Microsecond, func() {
			f.m.ConnectForeign(f.mi, func(err error) {
				if err == nil {
					registered++
					if registered == n {
						allDoneAt = tb.Loop.Now()
					}
				}
			})
		})
	}
	tb.Run(30 * time.Second) // short of the 60s lifetime: no renewals mixed in
	row.Registered = registered
	row.TotalElapsed = allDoneAt.Sub(start)

	// Correlate request->reply per registration ID from the shared trace.
	sent := map[string]trace.Event{}
	for _, e := range tracer.Find("reg.request.sent") {
		sent[e.Detail] = e
	}
	for _, e := range tracer.Find("reg.reply.received") {
		row.Latency.Add(e.At.Sub(matchRequest(sent, e).At))
	}
	return row, tb.SnapshotMetrics(fmt.Sprintf("fleet-%d", n)), nil
}

// matchRequest pairs a reply event with its request by registration id.
func matchRequest(sent map[string]trace.Event, reply trace.Event) trace.Event {
	// Details look like "careof=36.8.2.1 id=123 try=1" (request) and
	// "accepted lifetime=60s id=123" (reply); match on the id token.
	id := idToken(reply.Detail)
	for k, e := range sent {
		if idToken(k) == id {
			return e
		}
	}
	return reply
}

func idToken(detail string) string {
	for _, f := range strings.Fields(detail) {
		if strings.HasPrefix(f, "id=") {
			return f
		}
	}
	return ""
}

// --- A4: handoff strategies (cold / hot / simultaneous bindings) ----------

// A4Result compares the three handoff strategies the system supports when
// leaving the radio for the wire, with radio coverage lost the moment the
// switch completes (walking out of range). Cold switching pays the full
// bring-up blackout; hot switching saves that but still loses packets in
// flight toward the old care-of address on the high-latency radio; the
// simultaneous-bindings extension (S flag) duplicates packets to both
// addresses during the overlap and loses nothing.
type A4Result struct {
	Cold         *stats.LossHistogram
	Hot          *stats.LossHistogram
	Simultaneous *stats.LossHistogram
	Duplicated   uint64 // copies the HA emitted during overlaps
	// Export holds one snapshot per strategy.
	Export *Export
}

func (r *A4Result) String() string {
	var b strings.Builder
	b.WriteString("A4: handoff strategies, radio->wired with coverage loss at switch completion\n")
	b.WriteString("(cold = paper's basic switch; hot = paper's make-before-break; simultaneous = S-flag extension)\n")
	b.WriteString(r.Cold.String())
	b.WriteString(r.Hot.String())
	b.WriteString(r.Simultaneous.String())
	fmt.Fprintf(&b, "mean loss: cold %.1f, hot %.1f, simultaneous %.1f (HA duplicated %d copies)\n",
		float64(r.Cold.TotalLost())/float64(r.Cold.Iterations()),
		float64(r.Hot.TotalLost())/float64(r.Hot.Iterations()),
		float64(r.Simultaneous.TotalLost())/float64(r.Simultaneous.Iterations()),
		r.Duplicated)
	return b.String()
}

// RunA4 measures the three strategies over the given number of handoffs
// each.
func RunA4(seed int64, iterations int) (*A4Result, error) {
	res := &A4Result{
		Cold:         stats.NewLossHistogram("cold switch"),
		Hot:          stats.NewLossHistogram("hot switch"),
		Simultaneous: stats.NewLossHistogram("hot switch with simultaneous bindings"),
		Export:       &Export{Experiment: "a4", Seed: seed},
	}
	const probeInterval = 50 * time.Millisecond

	run := func(strategy string, hist *stats.LossHistogram) error {
		tb := New(seed + int64(len(strategy)))
		defer tb.Close()
		tb.MoveEthTo(tb.DeptNet)
		tb.MustConnectForeign(tb.Strip) // start on the radio
		probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, probeInterval)
		if err != nil {
			return err
		}
		for i := 0; i < iterations; i++ {
			probe.Start()
			tb.Run(2 * time.Second)
			sb, rb := quiesce(tb, probe)
			probe.Start()

			done := false
			leaveRadio := func(err error) {
				if err == nil {
					// Coverage is lost the moment we finish switching.
					tb.Strip.Iface().Device().BringDown()
					done = true
				}
			}
			switch strategy {
			case "cold":
				tb.MH.ColdSwitch(tb.Eth, leaveRadio)
			case "hot":
				tb.Eth.Iface().Device().BringUp(func() {
					tb.MH.Prepare(tb.Eth, func(err error) {
						if err != nil {
							return
						}
						tb.MH.HotSwitch(tb.Eth, leaveRadio)
					})
				})
			case "simultaneous":
				tb.Eth.Iface().Device().BringUp(func() {
					tb.MH.Prepare(tb.Eth, func(err error) {
						if err != nil {
							return
						}
						tb.MH.AddSimultaneousBinding(tb.Eth.Addr(), func(err error) {
							if err != nil {
								return
							}
							// Let duplication cover the radio's in-flight
							// window before retiring the old binding.
							tb.Loop.Schedule(400*time.Millisecond, func() {
								tb.MH.HotSwitch(tb.Eth, leaveRadio)
							})
						})
					})
				})
			}
			if !runUntilDone(tb, &done, 60*time.Second) {
				return fmt.Errorf("%s iteration %d stalled", strategy, i)
			}
			sa, ra := quiesce(tb, probe)
			hist.Record(LossBetween(sb, rb, sa, ra))
			if strategy == "simultaneous" {
				res.Duplicated = tb.HA.Stats().Duplicated
			}

			// Restore: back onto the radio (unmeasured).
			restored := false
			tb.MH.ColdSwitch(tb.Strip, func(error) { restored = true })
			if !runUntilDone(tb, &restored, 60*time.Second) {
				return fmt.Errorf("%s restore %d stalled", strategy, i)
			}
			tb.MH.Disconnect(tb.Eth)
			tb.Run(time.Second)
		}
		probe.Stop()
		res.Export.Snapshots = append(res.Export.Snapshots, tb.SnapshotMetrics(strategy))
		return nil
	}
	if err := run("cold", res.Cold); err != nil {
		return nil, err
	}
	if err := run("hot", res.Hot); err != nil {
		return nil, err
	}
	if err := run("simultaneous", res.Simultaneous); err != nil {
		return nil, err
	}
	return res, nil
}
