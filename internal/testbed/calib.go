// Package testbed reconstructs the paper's experimental environment
// (Figure 5) and its evaluation: the MosquitoNet home subnet 36.135, the
// Computer Science department subnet 36.8, the Metricom radio subnet
// 36.134, a Pentium-90 router with the home agent collocated on it, a
// Gateway Handbook 486 mobile host with a PCMCIA Ethernet card and a STRIP
// radio, and a correspondent host on 36.8.
//
// This file holds every calibration constant, each tied to a number the
// paper reports. The substrate cannot know what a 1996 subnotebook's
// kernel took to process a packet; these constants make the simulated
// software costs land on the paper's measured registration time-line and
// loss windows, so the experiment harnesses reproduce the shape (and
// roughly the scale) of the published results.
package testbed

import "time"

// Per-host software costs.
const (
	// MHProcDelay is the Handbook 486's per-packet input and output
	// processing cost. Calibrated so the registration request->reply
	// latency (2*MHProcDelay + wire + HA turnaround) lands on the paper's
	// measured 4.79 ms (Figure 7).
	MHProcDelay = 1210 * time.Microsecond

	// HAProcessing is the Pentium-90 home agent's registration handling
	// cost, the paper's measured 1.48 ms between receiving a request and
	// sending the reply; HAInputDelay/HAOutputDelay are the router's
	// generic per-packet receive/send costs outside that span.
	HAInputDelay  = 250 * time.Microsecond
	HAProcessing  = 1480 * time.Microsecond
	HAOutputDelay = 230 * time.Microsecond

	// RouterForwardDelay is the Pentium-90's per-packet forwarding cost.
	RouterForwardDelay = 200 * time.Microsecond

	// CHProcDelay is the correspondent host's per-packet cost.
	CHProcDelay = 300 * time.Microsecond
)

// Mobile-host reconfiguration costs (the "pre-registration process" of
// Figure 7: "configuring the interface and changing the route table").
// ConfigureDelay + RouteChangeDelay + the 4.79 ms request->reply ≈ the
// paper's 7.39 ms total.
const (
	ConfigureDelay   = 2 * time.Millisecond
	RouteChangeDelay = 600 * time.Microsecond
)

// Device bring-up times. The paper attributes the cold-switch loss window
// ("generally less than 1.25 seconds") to "bringing up the new interface";
// at the 250 ms probe interval that is a small handful of lost packets.
const (
	// EthBringUp models inserting/enabling the Linksys PCMCIA Ethernet
	// card and its driver initialization.
	EthBringUp       = 400 * time.Millisecond
	EthBringUpJitter = 100 * time.Millisecond

	// RadioBringUp models waking the Metricom radio over the 115.2 Kbit/s
	// serial line and entering Starmode.
	RadioBringUp       = 550 * time.Millisecond
	RadioBringUpJitter = 150 * time.Millisecond
)

// DHCPProcessing is the foreign network's DHCP server think time per
// message.
const DHCPProcessing = 1 * time.Millisecond

// Registration lifetime requested by the mobile host in experiments.
const RegLifetime = 60 * time.Second

// Experiment parameters taken verbatim from Section 4.
const (
	// E1SendInterval: "a correspondent host continuously sends a UDP
	// packet to the mobile host every 10 milliseconds".
	E1SendInterval = 10 * time.Millisecond
	// E1Iterations: "twenty iterations of this experiment".
	E1Iterations = 20

	// F6SendInterval: "the correspondent host sends a UDP packet every
	// 250 milliseconds", chosen to match the radio RTT.
	F6SendInterval = 250 * time.Millisecond
	// F6Iterations: "after running each experiment 10 times".
	F6Iterations = 10

	// F7Iterations: "the data reflects the average of 10 tests".
	F7Iterations = 10
)

// Paper-reported values the harnesses compare against (EXPERIMENTS.md
// records ours next to these).
const (
	// PaperRegTotal is Figure 7's start-to-end address switch time.
	PaperRegTotal = 7390 * time.Microsecond
	// PaperRegRequestReply is Figure 7's request->reply latency.
	PaperRegRequestReply = 4790 * time.Microsecond
	// PaperHATurnaround is Figure 7's home-agent processing time.
	PaperHATurnaround = 1480 * time.Microsecond
	// PaperColdSwitchWindow bounds Figure 6's cold-switch loss window.
	PaperColdSwitchWindow = 1250 * time.Millisecond
	// PaperRadioRTTLow/High bound the radio round-trip time (Section 4).
	PaperRadioRTTLow  = 200 * time.Millisecond
	PaperRadioRTTHigh = 250 * time.Millisecond
)
