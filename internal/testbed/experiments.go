package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// This file implements the paper's evaluation (Section 4) plus the
// ablations listed in DESIGN.md. Each Run* function builds a fresh
// testbed, runs the experiment to completion in virtual time, and returns
// a result whose String() prints the same rows/series the paper reports.

// --- E1: same-subnet care-of address switch ------------------------------

// E1Result is the first experiment: the minimal essential software
// overhead of a switch, measured as packets lost from a 10 ms UDP echo
// stream while the mobile host re-registers a new address on the same
// subnet. The paper saw 16/20 iterations lose nothing and 4/20 lose one
// packet, bounding the disruption under 10 ms.
type E1Result struct {
	Histogram *stats.LossHistogram
	// Window is the measured disruption interval per iteration: from the
	// moment the old address stops accepting packets to the home agent
	// installing the new binding.
	Window *stats.Series
	// Export is the machine-readable record of the run.
	Export *Export
}

func (r *E1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1: same-subnet address switch (%d ms UDP stream, %d iterations)\n",
		E1SendInterval/time.Millisecond, r.Histogram.Iterations())
	fmt.Fprintf(&b, "paper: 16/20 iterations lost 0 packets, 4/20 lost 1; window < 10ms\n")
	b.WriteString(r.Histogram.String())
	fmt.Fprintf(&b, "disruption window: mean=%v max=%v\n", r.Window.Mean().Round(time.Microsecond), r.Window.Max().Round(time.Microsecond))
	return b.String()
}

// RunE1 performs the same-subnet switch experiment.
func RunE1(seed int64) (*E1Result, error) {
	tb := New(seed)
	defer tb.Close()
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)

	probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, E1SendInterval)
	if err != nil {
		return nil, err
	}
	res := &E1Result{
		Histogram: stats.NewLossHistogram("same-subnet address switch"),
		Window:    stats.NewSeries("disruption window"),
	}
	// Two static addresses outside the DHCP pool to flip between.
	addrs := [2]ip.Addr{ip.MustParseAddr("36.8.0.200"), ip.MustParseAddr("36.8.0.201")}

	for i := 0; i < E1Iterations; i++ {
		probe.Start()
		tb.Run(500 * time.Millisecond)
		sentBefore, recvBefore := quiesce(tb, probe)

		probe.Start()
		// Vary the phase of the switch relative to the 10 ms send clock;
		// resuming the probe restarts its clock, so without this the
		// switch would always land at the same offset.
		tb.Run(3*E1SendInterval + time.Duration(tb.Loop.Rand().Int63n(int64(E1SendInterval))))
		tb.Tracer.Reset()
		done := false
		var swErr error
		tb.MH.SwitchAddress(addrs[i%2], func(err error) { swErr, done = err, true })
		if !runUntilDone(tb, &done, 5*time.Second) || swErr != nil {
			return nil, fmt.Errorf("E1 iteration %d: done=%v err=%v", i, done, swErr)
		}
		res.Window.Add(disruptionWindow(tb.Tracer))

		sentAfter, recvAfter := quiesce(tb, probe)
		res.Histogram.Record(LossBetween(sentBefore, recvBefore, sentAfter, recvAfter))
	}
	probe.Stop()
	res.Export = &Export{Experiment: "e1", Seed: seed, Snapshots: []*metrics.Snapshot{tb.SnapshotMetrics("e1")}}
	return res, nil
}

// quiesce pauses the probe, drains in-flight packets, and snapshots the
// counters so loss accounting has no boundary error.
func quiesce(tb *Testbed, probe *EchoProbe) (sent, recv uint64) {
	probe.Pause()
	tb.Run(2 * time.Second)
	return probe.Snapshot()
}

// runUntilDone advances the simulation in small steps until *done flips or
// maxWait elapses, so measured windows do not include dead post-completion
// time (which would add unrelated steady-state radio losses).
func runUntilDone(tb *Testbed, done *bool, maxWait time.Duration) bool {
	deadline := tb.Loop.Now().Add(maxWait)
	for !*done && tb.Loop.Now() < deadline {
		tb.Run(20 * time.Millisecond)
	}
	return *done
}

// runUntil advances the simulation in small steps until cond holds or
// maxWait elapses, reporting whether cond was met.
func runUntil(tb *Testbed, maxWait time.Duration, cond func() bool) bool {
	deadline := tb.Loop.Now().Add(maxWait)
	for !cond() && tb.Loop.Now() < deadline {
		tb.Run(20 * time.Millisecond)
	}
	return cond()
}

// disruptionWindow extracts, from the trace, the interval between the old
// address ceasing to accept packets and the home agent installing the new
// binding.
func disruptionWindow(tr *trace.Tracer) time.Duration {
	start, ok1 := tr.Last("addrswitch.configure.done")
	end, ok2 := tr.Last("binding.installed")
	if !ok1 || !ok2 || end.At < start.At {
		return 0
	}
	return end.At.Sub(start.At)
}

// --- F6: device switching overhead ---------------------------------------

// F6Scenario names one bar chart of Figure 6.
type F6Scenario int

// The four Figure 6 scenarios.
const (
	ColdWiredToWireless F6Scenario = iota
	ColdWirelessToWired
	HotWiredToWireless
	HotWirelessToWired
)

func (s F6Scenario) String() string {
	switch s {
	case ColdWiredToWireless:
		return "cold wired->wireless"
	case ColdWirelessToWired:
		return "cold wireless->wired"
	case HotWiredToWireless:
		return "hot wired->wireless"
	case HotWirelessToWired:
		return "hot wireless->wired"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// F6Result reproduces Figure 6: per-scenario histograms of packets lost
// from a 250 ms UDP echo stream across a device switch.
type F6Result struct {
	Histograms map[F6Scenario]*stats.LossHistogram
	// Blackout records the registration-complete-to-switch-start interval
	// per cold iteration, the analogue of the paper's <1.25 s bound.
	Blackout *stats.Series
	// Export holds one metrics snapshot per scenario.
	Export *Export
}

func (r *F6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F6: device switching overhead (%d ms UDP stream, %d iterations each)\n",
		F6SendInterval/time.Millisecond, F6Iterations)
	b.WriteString("paper: cold-switch loss window generally < 1.25 s (a few packets at 250 ms); hot switching usually no loss\n")
	for _, s := range []F6Scenario{ColdWiredToWireless, ColdWirelessToWired, HotWiredToWireless, HotWirelessToWired} {
		b.WriteString(r.Histograms[s].String())
	}
	fmt.Fprintf(&b, "cold-switch blackout: mean=%v max=%v (paper bound: %v)\n",
		r.Blackout.Mean().Round(time.Millisecond), r.Blackout.Max().Round(time.Millisecond), PaperColdSwitchWindow)
	return b.String()
}

// RunF6 performs all four device-switch scenarios.
func RunF6(seed int64) (*F6Result, error) {
	res := &F6Result{
		Histograms: make(map[F6Scenario]*stats.LossHistogram),
		Blackout:   stats.NewSeries("cold blackout"),
		Export:     &Export{Experiment: "f6", Seed: seed},
	}
	for _, sc := range []F6Scenario{ColdWiredToWireless, ColdWirelessToWired, HotWiredToWireless, HotWirelessToWired} {
		h, snap, err := runF6Scenario(seed, sc, res.Blackout)
		if err != nil {
			return nil, fmt.Errorf("F6 %v: %w", sc, err)
		}
		res.Histograms[sc] = h
		res.Export.Snapshots = append(res.Export.Snapshots, snap)
	}
	return res, nil
}

func runF6Scenario(seed int64, sc F6Scenario, blackout *stats.Series) (*stats.LossHistogram, *metrics.Snapshot, error) {
	tb := New(seed + int64(sc))
	defer tb.Close()
	hist := stats.NewLossHistogram(sc.String())

	// The mobile host visits net 36.8 on the wired card and net 36.134 on
	// the radio, as in Figure 5.
	tb.MoveEthTo(tb.DeptNet)

	wiredFirst := sc == ColdWiredToWireless || sc == HotWiredToWireless
	hot := sc == HotWiredToWireless || sc == HotWirelessToWired
	from, to := tb.Eth, tb.Strip
	if !wiredFirst {
		from, to = tb.Strip, tb.Eth
	}
	tb.MustConnectForeign(from)

	probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, F6SendInterval)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < F6Iterations; i++ {
		probe.Start()
		tb.Run(2*time.Second + time.Duration(tb.Loop.Rand().Int63n(int64(F6SendInterval))))
		sentBefore, recvBefore := quiesce(tb, probe)
		probe.Start()
		tb.Tracer.Reset()

		switchStart := tb.Loop.Now()
		done := false
		var swErr error
		var doneAt sim.Time
		finish := func(err error) { swErr, done, doneAt = err, true, tb.Loop.Now() }
		if hot {
			// Bring the target up and stage it while the old interface
			// still carries traffic, then flip.
			to.Iface().Device().BringUp(func() {
				tb.MH.Prepare(to, func(err error) {
					if err != nil {
						finish(err)
						return
					}
					tb.MH.HotSwitch(to, finish)
				})
			})
		} else {
			tb.MH.ColdSwitch(to, finish)
		}
		if !runUntilDone(tb, &done, 30*time.Second) || swErr != nil {
			return nil, nil, fmt.Errorf("iteration %d: done=%v err=%v", i, done, swErr)
		}
		if !hot {
			blackout.Add(doneAt.Sub(switchStart))
		}

		sentAfter, recvAfter := quiesce(tb, probe)
		hist.Record(LossBetween(sentBefore, recvBefore, sentAfter, recvAfter))

		// Restore the starting configuration (unmeasured).
		restoreDone := false
		if hot {
			from.Iface().Device().BringUp(func() {
				tb.MH.Prepare(from, func(error) {
					tb.MH.HotSwitch(from, func(error) { restoreDone = true })
				})
			})
		} else {
			tb.MH.ColdSwitch(from, func(error) { restoreDone = true })
		}
		if !runUntilDone(tb, &restoreDone, 30*time.Second) {
			return nil, nil, fmt.Errorf("iteration %d: restore failed", i)
		}
		if hot {
			tb.MH.Disconnect(to)
			tb.Run(time.Second)
		}
	}
	probe.Stop()
	return hist, tb.SnapshotMetrics(sc.String()), nil
}

// --- F7: registration time-line ------------------------------------------

// F7Result reproduces Figure 7: the per-step breakdown of a same-subnet
// address switch and registration, averaged over 10 runs. The paper
// reports 7.39 ms total, 4.79 ms request->reply, and 1.48 ms of home-agent
// processing.
type F7Result struct {
	Configure    *stats.Series // interface configuration
	RouteChange  *stats.Series // route table update
	RequestReply *stats.Series // registration request -> reply at the MH
	HATurnaround *stats.Series // request received -> reply sent at the HA
	Total        *stats.Series // start of switch -> reply received
	// Timeline is the last iteration's registration timeline (the
	// addrswitch/reg/binding events), detached from the live trace so it
	// can be exported as JSONL after the run.
	Timeline *trace.Tracer
	// Export is the machine-readable record of the run; its Timeline field
	// carries the same events as Timeline above.
	Export *Export
}

func (r *F7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F7: registration time-line (%d iterations; mean with std dev, as in the paper)\n", r.Total.N())
	fmt.Fprintf(&b, "paper: total 7.39ms, request->reply 4.79ms, HA processing 1.48ms\n")
	for _, s := range []*stats.Series{r.Configure, r.RouteChange, r.RequestReply, r.HATurnaround, r.Total} {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}

// RunF7 performs the registration time-line experiment.
func RunF7(seed int64) (*F7Result, error) {
	tb := New(seed)
	defer tb.Close()
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)

	res := &F7Result{
		Configure:    stats.NewSeries("configure interface"),
		RouteChange:  stats.NewSeries("change route table"),
		RequestReply: stats.NewSeries("request->reply"),
		HATurnaround: stats.NewSeries("HA turnaround"),
		Total:        stats.NewSeries("total"),
	}
	addrs := [2]ip.Addr{ip.MustParseAddr("36.8.0.200"), ip.MustParseAddr("36.8.0.201")}
	for i := 0; i < F7Iterations; i++ {
		tb.Tracer.Reset()
		done := false
		var swErr error
		tb.MH.SwitchAddress(addrs[i%2], func(err error) { swErr, done = err, true })
		tb.Run(5 * time.Second)
		if !done || swErr != nil {
			return nil, fmt.Errorf("F7 iteration %d: done=%v err=%v", i, done, swErr)
		}
		tr := tb.Tracer
		tStart, _ := tr.Last("addrswitch.start")
		tConf, _ := tr.Last("addrswitch.configure.done")
		tRoute, _ := tr.Last("addrswitch.route.done")
		tReq, _ := tr.Last("reg.request.sent")
		tReqRx, _ := tr.Last("reg.request.received")
		tRepTx, _ := tr.Last("reg.reply.sent")
		tRepRx, _ := tr.Last("reg.reply.received")
		res.Configure.Add(tConf.At.Sub(tStart.At))
		res.RouteChange.Add(tRoute.At.Sub(tConf.At))
		res.RequestReply.Add(tRepRx.At.Sub(tReq.At))
		res.HATurnaround.Add(tRepTx.At.Sub(tReqRx.At))
		res.Total.Add(tRepRx.At.Sub(tStart.At))
		if i == F7Iterations-1 {
			res.Timeline = tr.Filter("addrswitch.", "reg.", "binding.")
		}
		tb.Run(time.Second)
	}
	res.Export = &Export{
		Experiment: "f7",
		Seed:       seed,
		Snapshots:  []*metrics.Snapshot{tb.SnapshotMetrics("f7")},
		Timeline:   res.Timeline.Events(),
	}
	return res, nil
}

// --- T-RTT: path round-trip times ----------------------------------------

// RTTResult characterizes the testbed's paths, anchoring the 250 ms probe
// interval of Figure 6 ("the round-trip time between the home agent and
// the mobile host through the radio interface is 200~250ms").
type RTTResult struct {
	RadioRTT *stats.Series // MH <-> router over the radio
	WiredRTT *stats.Series // MH <-> router over visited Ethernet
	// Export holds one metrics snapshot per medium.
	Export *Export
}

func (r *RTTResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T-RTT: path round-trip times\n")
	fmt.Fprintf(&b, "paper: radio RTT 200~250ms\n")
	fmt.Fprintf(&b, "  %s (min=%v max=%v)\n", r.RadioRTT, r.RadioRTT.Min().Round(time.Millisecond), r.RadioRTT.Max().Round(time.Millisecond))
	fmt.Fprintf(&b, "  %s (min=%v max=%v)\n", r.WiredRTT, r.WiredRTT.Min().Round(time.Microsecond), r.WiredRTT.Max().Round(time.Microsecond))
	return b.String()
}

// RunRTT measures both media with local-role pings from the mobile host to
// the router.
func RunRTT(seed int64, samples int) (*RTTResult, error) {
	res := &RTTResult{
		RadioRTT: stats.NewSeries("radio MH<->router"),
		WiredRTT: stats.NewSeries("wired MH<->router"),
	}

	// Radio: MH on 36.134 pinging its router.
	tb := New(seed)
	defer tb.Close()
	tb.MustConnectForeign(tb.Strip)
	collectPings(tb, RouterRadioAddr, MHRadioAddr, samples, res.RadioRTT)

	// Wired: MH visiting 36.8 pinging its router.
	tb2 := New(seed + 1)
	defer tb2.Close()
	tb2.MoveEthTo(tb2.DeptNet)
	tb2.MustConnectForeign(tb2.Eth)
	collectPings(tb2, RouterDeptAddr, tb2.MH.CareOf(), samples, res.WiredRTT)
	res.Export = &Export{Experiment: "rtt", Seed: seed, Snapshots: []*metrics.Snapshot{
		tb.SnapshotMetrics("radio"), tb2.SnapshotMetrics("wired"),
	}}
	return res, nil
}

func collectPings(tb *Testbed, dst, bound ip.Addr, samples int, series *stats.Series) {
	for i := 0; i < samples; i++ {
		tb.MH.Host().ICMP().Ping(dst, bound, 40, 3*time.Second, func(r stack.PingResult) {
			if !r.TimedOut && !r.Unreachable {
				series.Add(r.RTT)
			}
		})
		tb.Run(3 * time.Second)
	}
}

// --- T-TPUT: radio throughput ----------------------------------------------

// ThroughputResult validates the radio model against the paper's own
// characterization: nominal 100 Kbit/s, "in practice 30-40 Kbits/second is
// the best we achieve".
type ThroughputResult struct {
	Kbits         float64
	BytesReceived int
	Span          time.Duration
	// Export is the machine-readable record of the run.
	Export *Export
}

func (r *ThroughputResult) String() string {
	return fmt.Sprintf("T-TPUT: radio saturating throughput\npaper: 30-40 Kbit/s effective (100 nominal)\n  measured: %.1f Kbit/s (%d bytes over %v, reverse-tunneled UDP)\n",
		r.Kbits, r.BytesReceived, r.Span.Round(time.Millisecond))
}

// RunThroughput measures saturating UDP goodput from the mobile host on
// the radio subnet to the correspondent, through the reverse tunnel.
func RunThroughput(seed int64, datagrams, size int) (*ThroughputResult, error) {
	tb := New(seed)
	defer tb.Close()
	tb.MustConnectForeign(tb.Strip)

	res := &ThroughputResult{}
	var firstAt, lastAt time.Duration
	if _, err := tb.CH.UDP(ip.Unspecified, 9000, func(d transport.Datagram) {
		if res.BytesReceived == 0 {
			firstAt = tb.Loop.Now().Duration()
		}
		res.BytesReceived += len(d.Payload)
		lastAt = tb.Loop.Now().Duration()
	}); err != nil {
		return nil, err
	}
	cli, err := tb.MHTS.UDP(ip.Unspecified, 0, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < datagrams; i++ {
		cli.SendTo(CHAddr, 9000, make([]byte, size))
	}
	tb.Run(5 * time.Minute)
	res.Span = lastAt - firstAt
	if res.Span > 0 {
		res.Kbits = float64(res.BytesReceived*8) / res.Span.Seconds() / 1000
	}
	res.Export = &Export{Experiment: "tput", Seed: seed, Snapshots: []*metrics.Snapshot{tb.SnapshotMetrics("tput")}}
	return res, nil
}
