package testbed

import (
	"encoding/json"
	"io"

	"mosquitonet/internal/metrics"
	"mosquitonet/internal/trace"
)

// Export is the machine-readable record of one experiment run: the seed
// (sufficient to reproduce it bit-for-bit), one metrics snapshot per
// scenario the experiment executed, and — where the experiment is about a
// protocol timeline — the trace events of its final iteration. The
// experiments command serializes one Export per experiment as
// BENCH_<name>.json.
type Export struct {
	Experiment string              `json:"experiment"`
	Seed       int64               `json:"seed"`
	Snapshots  []*metrics.Snapshot `json:"snapshots"`
	Timeline   []trace.Event       `json:"timeline,omitempty"`

	// Rows carries an experiment's own result table (e.g. the scale
	// experiment's per-fleet rows) when the metrics snapshots alone do
	// not tell the story. Struct-typed values marshal with a fixed field
	// order, keeping the export deterministic.
	Rows any `json:"rows,omitempty"`
}

// WriteJSON writes the export as indented JSON. Because snapshots order
// metrics deterministically and the simulation never consults the wall
// clock, two same-seed runs produce byte-identical output.
func (e *Export) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SnapshotMetrics captures the testbed's registry under a scenario name.
func (tb *Testbed) SnapshotMetrics(name string) *metrics.Snapshot {
	s := tb.Metrics.Snapshot()
	s.Name = name
	return s
}

// Close releases the testbed's per-loop telemetry associations. The Run*
// experiment drivers call it so building many testbeds in one process does
// not accumulate registry state; interactive users can ignore it.
func (tb *Testbed) Close() {
	metrics.Release(tb.Loop)
	trace.Release(tb.Loop)
}
