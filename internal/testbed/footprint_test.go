package testbed

import (
	"runtime"
	"testing"
)

// The host-footprint benchmark weighs a resident (constructed, not yet
// run) scale fleet. It measures the *marginal* cost of a mobile host by
// building two fleets in the same shard tier and dividing the live-heap
// delta by the host-count delta, so fixed infrastructure (routers, home
// agents, correspondents, trunks) cancels out.
//
// Two metrics are reported:
//
//	bytes/host  — live heap (after GC) attributable to one mobile host,
//	              including its stack, devices, ARP caches, transport
//	              stack, Mobile-IP machinery, metrics registrations, and
//	              its share of the pre-run event queue.
//	allocs/host — heap allocations performed to construct one host.
//
// Both fleet sizes sit in the same scaleShardCount tier so the shard
// infrastructure is identical and only the fleet differs.
const (
	footprintSmallFleet = 300
	footprintLargeFleet = 800
)

// weighFleet builds an n-host fleet and returns its live heap bytes
// (after a GC pass, relative to the pre-build heap) and the number of
// allocations construction performed.
func weighFleet(tb testing.TB, n int) (liveBytes, mallocs uint64) {
	var before, mid, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fl, err := buildScaleFleet(1996, n, 1)
	if err != nil {
		tb.Fatal(err)
	}
	runtime.ReadMemStats(&mid)
	runtime.GC()
	runtime.ReadMemStats(&after)
	liveBytes = after.HeapAlloc - before.HeapAlloc
	mallocs = mid.Mallocs - before.Mallocs
	fl.release()
	runtime.KeepAlive(fl)
	return liveBytes, mallocs
}

// measureHostFootprint returns the marginal bytes/host and allocs/host of
// one mobile host in the scale topology.
func measureHostFootprint(tb testing.TB) (bytesPerHost, allocsPerHost float64) {
	smallBytes, smallAllocs := weighFleet(tb, footprintSmallFleet)
	largeBytes, largeAllocs := weighFleet(tb, footprintLargeFleet)
	hosts := float64(footprintLargeFleet - footprintSmallFleet)
	return float64(largeBytes-smallBytes) / hosts, float64(largeAllocs-smallAllocs) / hosts
}

// BenchmarkHostFootprint reports the per-host memory footprint of the
// scale topology. It pins the per-host memory diet by numbers: CI fails
// the run if bytes/host regresses past the budget (see
// TestHostFootprintBudget for the enforced bound).
func BenchmarkHostFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bytesPerHost, allocsPerHost := measureHostFootprint(b)
		b.ReportMetric(bytesPerHost, "bytes/host")
		b.ReportMetric(allocsPerHost, "allocs/host")
	}
	b.ReportMetric(0, "ns/op") // wall time is meaningless here; the metrics above are the result
}

// Budgets for TestHostFootprintBudget. The measured footprint after the
// per-host memory diet (interned addresses, snapshot-time metric
// collectors, lazy host/transport maps, packed ARP tables, slab-allocated
// host structs, self-chaining load timers) is ~5.8 KB and ~162 allocs per
// host; before the diet it was ~24.4 KB and ~733 allocs. The budgets sit
// ~40% above the measured values — loose enough to absorb Go-version and
// allocator noise, tight enough that reintroducing any one of the big
// per-host costs (a 20-entry metric roster, eagerly-allocated maps, a
// per-packet address formatter) blows through them.
const (
	footprintBytesBudget  = 8192
	footprintAllocsBudget = 230
)

// TestHostFootprintBudget is the memory-diet regression guard: it fails
// if the marginal cost of a mobile host exceeds the budgeted bytes or
// allocations. Skipped under -short because it builds two fleets.
func TestHostFootprintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint measurement builds two fleets; skipped in -short")
	}
	bytesPerHost, allocsPerHost := measureHostFootprint(t)
	t.Logf("footprint: %.0f bytes/host, %.1f allocs/host (budget %d bytes, %d allocs)",
		bytesPerHost, allocsPerHost, footprintBytesBudget, footprintAllocsBudget)
	if bytesPerHost > footprintBytesBudget {
		t.Errorf("bytes/host = %.0f, budget %d", bytesPerHost, footprintBytesBudget)
	}
	if allocsPerHost > footprintAllocsBudget {
		t.Errorf("allocs/host = %.1f, budget %d", allocsPerHost, footprintAllocsBudget)
	}
}
