package testbed

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// The handoff observatory runs the mnet roaming itinerary — home, the
// department Ethernet, the radio, a hot switch back to the wire, home
// again — under full span tracing, with a one-way sequence-numbered probe
// flowing correspondent -> mobile host throughout. Each root handoff span
// becomes an attribution window for the flow's disruption metrics (loss,
// blackout, latency spike over baseline, reordering), and a flight
// recorder dumps the recent trace on anomalies (registration timeouts,
// no-route drop bursts). Everything derives from virtual time and seeded
// randomness, so BENCH_handoff.json is byte-identical across same-seed
// runs at any worker count — the experiment is single-loop, workers never
// touch it.

// Handoff experiment shape.
const (
	HandoffProbeInterval = 50 * time.Millisecond
	// HandoffGrace extends each attribution window: damage starts with
	// packets already in flight when the switch begins and trails through
	// route convergence after it completes.
	HandoffGrace = 500 * time.Millisecond
	// handoffSettle is the steady-state dwell between moves.
	handoffSettle = 5 * time.Second

	// Flight-recorder tuning: the trace ring kept for dumps, and the
	// no-route burst that marks a blackout worth dumping over.
	handoffFlightCapacity  = 65536
	handoffFlightDumps     = 4
	handoffDropBurstCount  = 8
	handoffDropBurstWindow = 500 * time.Millisecond
)

// FlowProbe streams one-way sequence-numbered UDP datagrams into a
// stats.FlowTracker: the sender stamps each transmission, the receiver
// each arrival, and the tracker owns the loss/latency/reordering
// accounting. Unlike EchoProbe it never reflects traffic, so its latency
// samples are one-way and its loss is direction-attributable.
type FlowProbe struct {
	loop     *sim.Loop
	src      *transport.UDPSocket
	sink     *transport.UDPSocket
	dst      ip.Addr
	port     uint16
	interval time.Duration
	flow     *stats.FlowTracker

	seq     uint64
	paused  bool
	stopped bool
}

// NewFlowProbe installs the receiver on to (bound to the wildcard address,
// so it keeps collecting across address switches) and prepares the sender
// on from. Call Start to begin transmission.
func NewFlowProbe(loop *sim.Loop, from, to *transport.Stack, dst ip.Addr, port uint16, interval time.Duration) (*FlowProbe, error) {
	p := &FlowProbe{loop: loop, dst: dst, port: port, interval: interval, paused: true,
		flow: stats.NewFlowTracker(fmt.Sprintf("udp:%v:%d", dst, port))}
	sink, err := to.UDP(ip.Unspecified, port, func(d transport.Datagram) {
		if len(d.Payload) < 8 {
			//lint:allow dropaccounting non-probe datagram ignored; flow accounting lives in the tracker
			return
		}
		p.flow.Received(binary.BigEndian.Uint64(d.Payload), p.loop.Now())
	})
	if err != nil {
		return nil, err
	}
	p.sink = sink
	src, err := from.UDP(ip.Unspecified, 0, nil)
	if err != nil {
		sink.Close()
		return nil, err
	}
	p.src = src
	return p, nil
}

// Start (or resume) transmission.
func (p *FlowProbe) Start() {
	if !p.paused || p.stopped {
		return
	}
	p.paused = false
	p.tick()
}

// Pause suspends transmission; in-flight packets still count on arrival.
func (p *FlowProbe) Pause() { p.paused = true }

// Stop ends the probe permanently and releases its sockets.
func (p *FlowProbe) Stop() {
	p.stopped = true
	p.paused = true
	p.src.Close()
	p.sink.Close()
}

// Flow returns the tracker accumulating this probe's accounting.
func (p *FlowProbe) Flow() *stats.FlowTracker { return p.flow }

func (p *FlowProbe) tick() {
	if p.paused || p.stopped {
		return
	}
	p.seq++
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], p.seq)
	p.flow.Sent(p.seq, p.loop.Now())
	p.src.SendTo(p.dst, p.port, payload[:])
	p.loop.Schedule(p.interval, p.tick)
}

// handoffRootKinds are the span kinds that bound whole handoffs — the
// roots the disruption analyzer turns into attribution windows. Phase
// spans (handoff.dhcp, handoff.configure, ...) can also appear as roots
// when Prepare runs outside a switch, so window selection matches exact
// kinds, not the "handoff." prefix.
var handoffRootKinds = map[string]bool{
	"handoff.cold":       true,
	"handoff.hot":        true,
	"handoff.home":       true,
	"handoff.connect":    true,
	"handoff.addrswitch": true,
}

// observationWindows turns every closed root span that bounds a handoff
// or an injected fault into one attribution window, in span start order
// (spans are retained in start order).
func observationWindows(tr *trace.Tracer) []stats.Window {
	var windows []stats.Window
	for _, sp := range tr.Spans() {
		if sp.Parent == 0 && (handoffRootKinds[sp.Kind] || scenario.FaultRootKinds(sp.Kind)) && sp.End >= sp.Start {
			windows = append(windows, stats.Window{Kind: sp.Kind, Start: sp.Start, End: sp.End})
		}
	}
	return windows
}

// HandoffRows is the machine-readable result table of the handoff
// experiment: flow-wide totals plus one disruption report per handoff
// window. Struct-typed so the JSON field order is fixed.
type HandoffRows struct {
	ProbeIntervalNS   int64  `json:"probe_interval_ns"`
	GraceNS           int64  `json:"grace_ns"`
	BaselineLatencyNS int64  `json:"baseline_latency_ns"`
	PacketsSent       int    `json:"packets_sent"`
	PacketsReceived   int    `json:"packets_received"`
	PacketsLost       int    `json:"packets_lost"`
	Reorders          int    `json:"reorders"`
	FlightDumps       int    `json:"flight_dumps"`
	DroppedEvents     uint64 `json:"dropped_events"`
	DroppedSpans      uint64 `json:"dropped_spans"`

	Handoffs []stats.DisruptionReport `json:"handoffs"`
}

// HandoffResult is the full handoff observatory run.
type HandoffResult struct {
	Rows   HandoffRows
	Flow   *stats.FlowTracker
	Flight *trace.FlightRecorder
	// Tracer retains the run's full event and span record for export
	// (spans JSONL, Chrome trace) after the testbed is closed.
	Tracer *trace.Tracer
	Export *Export
}

func (r *HandoffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HANDOFF: disruption observatory (%v one-way probe, %v grace)\n",
		HandoffProbeInterval, HandoffGrace)
	fmt.Fprintf(&b, "flow: %d sent, %d received, %d lost, %d reordered; baseline one-way latency %v\n",
		r.Rows.PacketsSent, r.Rows.PacketsReceived, r.Rows.PacketsLost, r.Rows.Reorders,
		time.Duration(r.Rows.BaselineLatencyNS).Round(time.Microsecond))
	b.WriteString(stats.FormatDisruption(r.Rows.Handoffs))
	fmt.Fprintf(&b, "flight recorder: %d dumps", r.Rows.FlightDumps)
	for _, d := range r.Flight.Dumps() {
		fmt.Fprintf(&b, "; [%v] %s (%d events, %d spans)", d.At, d.Reason, len(d.Events), len(d.Spans))
	}
	b.WriteString("\n")
	return b.String()
}

// RunHandoff performs the roaming itinerary under the observatory and
// returns the per-handoff disruption reports. The itinerary, the probe,
// and the drain all come from the handoff scenario spec: the first
// itinerary step attaches the mobile host, the probe starts, and the
// remaining steps walk the five moves.
func RunHandoff(seed int64) (*HandoffResult, error) {
	spec, err := Scenario("handoff")
	if err != nil {
		return nil, err
	}
	tb, err := NewFromSpec(seed, spec)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	fr := trace.NewFlightRecorder(tb.Tracer, handoffFlightCapacity, handoffFlightDumps)
	fr.TriggerOn("reg.timeout")
	fr.TriggerOnBurst("drop.noroute", handoffDropBurstCount, handoffDropBurstWindow)

	if err := tb.World.Step(spec.Itinerary[0]); err != nil {
		return nil, fmt.Errorf("handoff: %w", err)
	}

	p := spec.Traffic.Probes[0]
	probe, err := NewFlowProbe(tb.Loop, tb.World.Stacks[p.From], tb.World.Stacks[p.To],
		ip.MustParseAddr(p.Dst), uint16(p.Port), p.Interval.D())
	if err != nil {
		return nil, err
	}
	probe.Start()

	if err := tb.World.RunItinerary(spec.Itinerary[1:]); err != nil {
		return nil, fmt.Errorf("handoff: %w", err)
	}

	// Drain: stop sending, let stragglers arrive.
	probe.Pause()
	tb.Run(spec.Traffic.Drain.D())

	windows := observationWindows(tb.Tracer)

	flow := probe.Flow()
	sent, received, lost, reorders := flow.Totals()
	res := &HandoffResult{
		Rows: HandoffRows{
			ProbeIntervalNS:   int64(p.Interval.D()),
			GraceNS:           int64(HandoffGrace),
			BaselineLatencyNS: int64(flow.Baseline()),
			PacketsSent:       sent,
			PacketsReceived:   received,
			PacketsLost:       lost,
			Reorders:          reorders,
			FlightDumps:       len(fr.Dumps()),
			DroppedEvents:     tb.Tracer.Dropped(),
			DroppedSpans:      tb.Tracer.DroppedSpans(),
			Handoffs:          flow.Analyze(windows, HandoffGrace),
		},
		Flow:   flow,
		Flight: fr,
		Tracer: tb.Tracer,
	}
	res.Export = &Export{
		Experiment: "handoff",
		Seed:       seed,
		Snapshots:  []*metrics.Snapshot{tb.SnapshotMetrics("handoff")},
		Rows:       res.Rows,
	}
	return res, nil
}
