package testbed

import (
	"bytes"
	"testing"

	"mosquitonet/internal/trace"
)

// The observatory's export contract: same seed, byte-identical artifacts —
// the disruption rows, the span record, and the Chrome trace.
func TestHandoffDeterminism(t *testing.T) {
	run := func() (export, spans, chrome string) {
		res, err := RunHandoff(7)
		if err != nil {
			t.Fatal(err)
		}
		var ej, sj, cj bytes.Buffer
		if err := res.Export.WriteJSON(&ej); err != nil {
			t.Fatal(err)
		}
		if err := res.Tracer.WriteSpansJSONL(&sj); err != nil {
			t.Fatal(err)
		}
		if err := res.Tracer.WriteChromeTrace(&cj); err != nil {
			t.Fatal(err)
		}
		return ej.String(), sj.String(), cj.String()
	}
	e1, s1, c1 := run()
	e2, s2, c2 := run()
	if e1 != e2 {
		t.Error("BENCH_handoff export diverged between same-seed runs")
	}
	if s1 != s2 {
		t.Error("span JSONL diverged between same-seed runs")
	}
	if c1 != c2 {
		t.Error("Chrome trace diverged between same-seed runs")
	}
}

func TestHandoffSpanTreeAndReports(t *testing.T) {
	res, err := RunHandoff(1996)
	if err != nil {
		t.Fatal(err)
	}

	// The itinerary yields six root windows: the initial home attach, two
	// cold switches out, the address switch, the hot switch, and the cold
	// switch home.
	if got := len(res.Rows.Handoffs); got != 6 {
		t.Fatalf("want 6 handoff windows, got %d: %+v", got, res.Rows.Handoffs)
	}

	// Cold switches through the radio must cost the flow something.
	lost := 0
	for _, r := range res.Rows.Handoffs {
		lost += r.PacketsLost
	}
	if lost == 0 {
		t.Error("no packets attributed lost across five moves")
	}
	if res.Rows.PacketsSent == 0 || res.Rows.PacketsReceived == 0 {
		t.Fatalf("flow did not run: %+v", res.Rows)
	}
	if res.Rows.PacketsLost < lost {
		t.Errorf("window-attributed loss %d exceeds flow total %d", lost, res.Rows.PacketsLost)
	}

	// The span tree must connect link change -> registration -> tunnel:
	// every registration attempt hangs off a handoff root, and tunnel
	// establishment hangs off a registration attempt.
	spans := res.Tracer.Spans()
	byID := make(map[uint64]trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	rootOf := func(sp trace.Span) trace.Span {
		for sp.Parent != 0 {
			sp = byID[sp.Parent]
		}
		return sp
	}
	regs := res.Tracer.FindSpans("reg.attempt")
	if len(regs) == 0 {
		t.Fatal("no reg.attempt spans recorded")
	}
	for _, sp := range regs {
		if root := rootOf(sp); !handoffRootKinds[root.Kind] {
			t.Errorf("reg.attempt %d roots at %q, not a handoff window", sp.ID, root.Kind)
		}
	}
	tunnels := res.Tracer.FindSpans("tunnel.established")
	if len(tunnels) == 0 {
		t.Fatal("no tunnel.established spans recorded")
	}
	for _, sp := range tunnels {
		if sp.Parent == 0 || byID[sp.Parent].Kind != "reg.attempt" {
			t.Errorf("tunnel.established %d not parented to a reg.attempt", sp.ID)
		}
	}
	if len(res.Tracer.FindSpans("link.up")) == 0 {
		t.Error("no link.up spans recorded")
	}
	if len(res.Tracer.FindSpans("handoff.dhcp")) == 0 {
		t.Error("no handoff.dhcp spans recorded")
	}
}
