package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/app"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/trace"
)

// The loaded-handoff observatory replays the Figure-5 five-move roaming
// itinerary — the same one RunHandoff measures with a bare UDP probe —
// under a sustained application mix:
//
//   - an MQTT-style broker on the department correspondent, with the
//     mobile host publishing QoS 1 telemetry on several topics (open-loop,
//     fixed rate) to a subscriber on the campus correspondent, and the
//     campus host publishing QoS 1 commands back to the mobile host;
//   - an HTTP-style server on the department correspondent, with the
//     mobile host running one open-loop and one closed-loop request flow.
//
// Every message carries a sequence number into a stats.FlowTracker, and
// each root handoff span becomes an attribution window, so the export
// answers the question the bare probe cannot: what does a handoff cost
// real, TCP-carried application traffic — per flow, per discipline, per
// move? Because the transport never gives up and the app layer never
// retransmits, QoS 1 messages in flight across a handoff arrive exactly
// once; the run fails loudly if that conformance breaks.
//
// The experiment is single-loop: worker counts shard other experiments,
// never this one, so the export is byte-identical across -workers values.

// The experiment shape — broker and server ports, flow counts, rates,
// payload sizes, and the drain bound — lives in the loadedhandoff
// scenario spec (testdata/scenarios/loadedhandoff.json).

// LoadedWindowRow scores one flow against one handoff window: the standard
// disruption report plus the delivered volume and goodput inside the
// grace-extended window.
type LoadedWindowRow struct {
	stats.DisruptionReport
	DeliveredInWindow int `json:"delivered_in_window"`
	// ThroughputBps is the flow's goodput across the grace-extended window
	// in bits per second of application payload (integer, for byte-stable
	// JSON).
	ThroughputBps int64 `json:"throughput_bps"`
}

// LoadedFlowRow is one flow's full accounting.
type LoadedFlowRow struct {
	Flow  string `json:"flow"`
	Proto string `json:"proto"` // "mqtt-qos1" or "http"
	Model string `json:"model"` // "open-loop" or "closed-loop"

	PacketsSent     int `json:"packets_sent"`
	PacketsReceived int `json:"packets_received"`
	PacketsLost     int `json:"packets_lost"`
	Reorders        int `json:"reorders"`
	Duplicates      int `json:"duplicates"`

	BaselineLatencyNS int64 `json:"baseline_latency_ns"`
	MeanLatencyNS     int64 `json:"mean_latency_ns"`
	P99LatencyNS      int64 `json:"p99_latency_ns"`
	MaxLatencyNS      int64 `json:"max_latency_ns"`

	// ThroughputBps is whole-run goodput in payload bits per second.
	ThroughputBps int64 `json:"throughput_bps"`

	Handoffs []LoadedWindowRow `json:"handoffs"`
}

// LoadedHandoffRows is the machine-readable result table.
type LoadedHandoffRows struct {
	GraceNS         int64 `json:"grace_ns"`
	QoS1ExactlyOnce bool  `json:"qos1_exactly_once"`

	BrokerStats     app.BrokerStats     `json:"broker"`
	HTTPServerStats app.HTTPServerStats `json:"http_server"`

	DroppedEvents uint64 `json:"dropped_events"`
	DroppedSpans  uint64 `json:"dropped_spans"`

	Flows []LoadedFlowRow `json:"flows"`
}

// LoadedHandoffResult is the full loaded-handoff run.
type LoadedHandoffResult struct {
	Rows   LoadedHandoffRows
	Tracer *trace.Tracer
	Export *Export
}

func (r *LoadedHandoffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LOADEDHANDOFF: roaming under pub/sub + request/response load (%v grace)\n", HandoffGrace)
	fmt.Fprintf(&b, "QoS 1 exactly-once across handoffs: %v\n", r.Rows.QoS1ExactlyOnce)
	fmt.Fprintf(&b, "%-18s %-10s %-12s %6s %6s %5s %12s %12s %10s\n",
		"flow", "proto", "model", "sent", "recv", "lost", "p99-latency", "max-latency", "goodput")
	for _, f := range r.Rows.Flows {
		fmt.Fprintf(&b, "%-18s %-10s %-12s %6d %6d %5d %12v %12v %8dbps\n",
			f.Flow, f.Proto, f.Model, f.PacketsSent, f.PacketsReceived, f.PacketsLost,
			time.Duration(f.P99LatencyNS).Round(time.Microsecond),
			time.Duration(f.MaxLatencyNS).Round(time.Microsecond),
			f.ThroughputBps)
	}
	if len(r.Rows.Flows) > 0 {
		b.WriteString("worst-hit flow per handoff window:\n")
		b.WriteString(formatWorstWindows(r.Rows.Flows))
	}
	return b.String()
}

// formatWorstWindows renders, for each handoff window, the flow that lost
// the most (ties to the longest blackout).
func formatWorstWindows(flows []LoadedFlowRow) string {
	var b strings.Builder
	for w := range flows[0].Handoffs {
		worst := 0
		for i := 1; i < len(flows); i++ {
			cand, best := flows[i].Handoffs[w], flows[worst].Handoffs[w]
			if cand.PacketsLost > best.PacketsLost ||
				(cand.PacketsLost == best.PacketsLost && cand.BlackoutNS > best.BlackoutNS) {
				worst = i
			}
		}
		hw := flows[worst].Handoffs[w]
		fmt.Fprintf(&b, "  %-20s %-18s lost=%d blackout=%v spike=%v delivered=%d\n",
			hw.Kind, flows[worst].Flow, hw.PacketsLost,
			time.Duration(hw.BlackoutNS).Round(time.Microsecond),
			time.Duration(hw.MaxLatencySpikeNS).Round(time.Microsecond),
			hw.DeliveredInWindow)
	}
	return b.String()
}

// RunLoadedHandoff performs the roaming itinerary under the application
// load and returns the per-flow, per-handoff disruption scoring. The
// topology, the traffic mix, and the itinerary all come from the
// loadedhandoff scenario spec: the first itinerary step attaches the
// mobile host, the traffic builder lowers the mix onto the app layer,
// and the remaining steps walk the five moves.
func RunLoadedHandoff(seed int64) (*LoadedHandoffResult, error) {
	spec, err := Scenario("loadedhandoff")
	if err != nil {
		return nil, err
	}
	tb, err := NewFromSpec(seed, spec)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	if err := tb.World.Step(spec.Itinerary[0]); err != nil {
		return nil, fmt.Errorf("loadedhandoff: %w", err)
	}

	lt, err := buildLoadedTraffic(tb, spec.Traffic)
	if err != nil {
		return nil, fmt.Errorf("loadedhandoff: %w", err)
	}
	lt.start()

	if err := tb.World.RunItinerary(spec.Itinerary[1:]); err != nil {
		return nil, fmt.Errorf("loadedhandoff: %w", err)
	}

	// Stop generating, then drain until every flow's sent count has been
	// received — TCP recovery after the last move may still be replaying.
	lt.stop()
	drained := runUntil(tb, spec.Traffic.Drain.D(), lt.drained)
	// A final settle so PUBACKs and spans close too.
	tb.Run(2 * time.Second)

	windows := observationWindows(tb.Tracer)

	rows := LoadedHandoffRows{
		GraceNS:         int64(HandoffGrace),
		QoS1ExactlyOnce: true,
		BrokerStats:     lt.broker.Stats(),
		HTTPServerStats: lt.web.Stats(),
		DroppedEvents:   tb.Tracer.Dropped(),
		DroppedSpans:    tb.Tracer.DroppedSpans(),
	}
	for _, lf := range lt.flows {
		sent, received, lost, reorders := lf.flow.Totals()
		dups, _ := lf.flow.Anomalies()
		if lf.proto == "mqtt-qos1" && (dups != 0 || lost != 0) {
			rows.QoS1ExactlyOnce = false
		}
		lat := lf.flow.LatencySeries()
		row := LoadedFlowRow{
			Flow:              lf.name,
			Proto:             lf.proto,
			Model:             lf.model,
			PacketsSent:       sent,
			PacketsReceived:   received,
			PacketsLost:       lost,
			Reorders:          reorders,
			Duplicates:        dups,
			BaselineLatencyNS: int64(lf.flow.Baseline()),
			MeanLatencyNS:     int64(lat.Mean()),
			P99LatencyNS:      int64(lat.Percentile(99)),
			MaxLatencyNS:      int64(lat.Max()),
			ThroughputBps:     goodputBps(received, lf.size, experimentSpan(lf.flow)),
		}
		for _, rep := range lf.flow.Analyze(windows, HandoffGrace) {
			lo := sim.Time(rep.StartNS).Add(-HandoffGrace)
			hi := sim.Time(rep.EndNS).Add(HandoffGrace)
			delivered := lf.flow.ReceivedBetween(lo, hi)
			row.Handoffs = append(row.Handoffs, LoadedWindowRow{
				DisruptionReport:  rep,
				DeliveredInWindow: delivered,
				ThroughputBps:     goodputBps(delivered, lf.size, hi.Sub(lo)),
			})
		}
		rows.Flows = append(rows.Flows, row)
	}
	if !drained {
		// Loss under a transport that never gives up means the drain window
		// was too short or a connection died; surface it rather than
		// exporting a silently-degraded table.
		return nil, fmt.Errorf("loadedhandoff: flows did not drain within %v", spec.Traffic.Drain.D())
	}

	res := &LoadedHandoffResult{Rows: rows, Tracer: tb.Tracer}
	res.Export = &Export{
		Experiment: "loadedhandoff",
		Seed:       seed,
		Snapshots:  []*metrics.Snapshot{tb.SnapshotMetrics("loadedhandoff")},
		Rows:       res.Rows,
	}
	return res, nil
}

// goodputBps converts delivered messages of size bytes over span to bits
// per second, in integer arithmetic for byte-stable exports.
func goodputBps(delivered, size int, span time.Duration) int64 {
	if span <= 0 {
		return 0
	}
	bits := int64(delivered) * int64(size) * 8
	return bits * int64(time.Second) / int64(span)
}

// experimentSpan is the flow's active interval: first send to last arrival.
func experimentSpan(f *stats.FlowTracker) time.Duration {
	first, last, ok := f.Span()
	if !ok {
		return 0
	}
	return last.Sub(first)
}
