package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/app"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/trace"
)

// The loaded-handoff observatory replays the Figure-5 five-move roaming
// itinerary — the same one RunHandoff measures with a bare UDP probe —
// under a sustained application mix:
//
//   - an MQTT-style broker on the department correspondent, with the
//     mobile host publishing QoS 1 telemetry on several topics (open-loop,
//     fixed rate) to a subscriber on the campus correspondent, and the
//     campus host publishing QoS 1 commands back to the mobile host;
//   - an HTTP-style server on the department correspondent, with the
//     mobile host running one open-loop and one closed-loop request flow.
//
// Every message carries a sequence number into a stats.FlowTracker, and
// each root handoff span becomes an attribution window, so the export
// answers the question the bare probe cannot: what does a handoff cost
// real, TCP-carried application traffic — per flow, per discipline, per
// move? Because the transport never gives up and the app layer never
// retransmits, QoS 1 messages in flight across a handoff arrive exactly
// once; the run fails loudly if that conformance breaks.
//
// The experiment is single-loop: worker counts shard other experiments,
// never this one, so the export is byte-identical across -workers values.

// Loaded-handoff experiment shape.
const (
	loadedBrokerPort = 1883
	loadedHTTPPort   = 8080

	loadedTelemetryFlows    = 3
	loadedTelemetryInterval = 100 * time.Millisecond
	loadedTelemetrySize     = 64
	loadedCommandInterval   = 200 * time.Millisecond
	loadedCommandSize       = 32
	loadedOpenReqInterval   = 200 * time.Millisecond
	loadedThinkTime         = 100 * time.Millisecond
	loadedReqSize           = 256

	// loadedDrainWait bounds the post-itinerary drain: the run waits for
	// every in-flight message to land (TCP recovery after the last move can
	// take several RTO backoffs) before scoring.
	loadedDrainWait = 60 * time.Second
)

// LoadedWindowRow scores one flow against one handoff window: the standard
// disruption report plus the delivered volume and goodput inside the
// grace-extended window.
type LoadedWindowRow struct {
	stats.DisruptionReport
	DeliveredInWindow int `json:"delivered_in_window"`
	// ThroughputBps is the flow's goodput across the grace-extended window
	// in bits per second of application payload (integer, for byte-stable
	// JSON).
	ThroughputBps int64 `json:"throughput_bps"`
}

// LoadedFlowRow is one flow's full accounting.
type LoadedFlowRow struct {
	Flow  string `json:"flow"`
	Proto string `json:"proto"` // "mqtt-qos1" or "http"
	Model string `json:"model"` // "open-loop" or "closed-loop"

	PacketsSent     int `json:"packets_sent"`
	PacketsReceived int `json:"packets_received"`
	PacketsLost     int `json:"packets_lost"`
	Reorders        int `json:"reorders"`
	Duplicates      int `json:"duplicates"`

	BaselineLatencyNS int64 `json:"baseline_latency_ns"`
	MeanLatencyNS     int64 `json:"mean_latency_ns"`
	P99LatencyNS      int64 `json:"p99_latency_ns"`
	MaxLatencyNS      int64 `json:"max_latency_ns"`

	// ThroughputBps is whole-run goodput in payload bits per second.
	ThroughputBps int64 `json:"throughput_bps"`

	Handoffs []LoadedWindowRow `json:"handoffs"`
}

// LoadedHandoffRows is the machine-readable result table.
type LoadedHandoffRows struct {
	GraceNS         int64 `json:"grace_ns"`
	QoS1ExactlyOnce bool  `json:"qos1_exactly_once"`

	BrokerStats     app.BrokerStats     `json:"broker"`
	HTTPServerStats app.HTTPServerStats `json:"http_server"`

	DroppedEvents uint64 `json:"dropped_events"`
	DroppedSpans  uint64 `json:"dropped_spans"`

	Flows []LoadedFlowRow `json:"flows"`
}

// LoadedHandoffResult is the full loaded-handoff run.
type LoadedHandoffResult struct {
	Rows   LoadedHandoffRows
	Tracer *trace.Tracer
	Export *Export
}

func (r *LoadedHandoffResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LOADEDHANDOFF: roaming under pub/sub + request/response load (%v grace)\n", HandoffGrace)
	fmt.Fprintf(&b, "QoS 1 exactly-once across handoffs: %v\n", r.Rows.QoS1ExactlyOnce)
	fmt.Fprintf(&b, "%-18s %-10s %-12s %6s %6s %5s %12s %12s %10s\n",
		"flow", "proto", "model", "sent", "recv", "lost", "p99-latency", "max-latency", "goodput")
	for _, f := range r.Rows.Flows {
		fmt.Fprintf(&b, "%-18s %-10s %-12s %6d %6d %5d %12v %12v %8dbps\n",
			f.Flow, f.Proto, f.Model, f.PacketsSent, f.PacketsReceived, f.PacketsLost,
			time.Duration(f.P99LatencyNS).Round(time.Microsecond),
			time.Duration(f.MaxLatencyNS).Round(time.Microsecond),
			f.ThroughputBps)
	}
	if len(r.Rows.Flows) > 0 {
		b.WriteString("worst-hit flow per handoff window:\n")
		b.WriteString(formatWorstWindows(r.Rows.Flows))
	}
	return b.String()
}

// formatWorstWindows renders, for each handoff window, the flow that lost
// the most (ties to the longest blackout).
func formatWorstWindows(flows []LoadedFlowRow) string {
	var b strings.Builder
	for w := range flows[0].Handoffs {
		worst := 0
		for i := 1; i < len(flows); i++ {
			cand, best := flows[i].Handoffs[w], flows[worst].Handoffs[w]
			if cand.PacketsLost > best.PacketsLost ||
				(cand.PacketsLost == best.PacketsLost && cand.BlackoutNS > best.BlackoutNS) {
				worst = i
			}
		}
		hw := flows[worst].Handoffs[w]
		fmt.Fprintf(&b, "  %-20s %-18s lost=%d blackout=%v spike=%v delivered=%d\n",
			hw.Kind, flows[worst].Flow, hw.PacketsLost,
			time.Duration(hw.BlackoutNS).Round(time.Microsecond),
			time.Duration(hw.MaxLatencySpikeNS).Round(time.Microsecond),
			hw.DeliveredInWindow)
	}
	return b.String()
}

// loadedFlow pairs one traffic generator's tracker with its labeling.
type loadedFlow struct {
	name  string
	proto string
	model string
	size  int // payload bytes per message, for goodput
	flow  *stats.FlowTracker
}

// RunLoadedHandoff performs the roaming itinerary under the application
// load and returns the per-flow, per-handoff disruption scoring.
func RunLoadedHandoff(seed int64) (*LoadedHandoffResult, error) {
	tb := New(seed)
	defer tb.Close()

	step := func(name string, f func(done func(error))) error {
		done, fail := false, error(nil)
		f(func(err error) { fail, done = err, true })
		if !runUntilDone(tb, &done, 30*time.Second) || fail != nil {
			return fmt.Errorf("loadedhandoff %s: done=%v err=%v", name, done, fail)
		}
		return nil
	}

	if err := step("attach home", func(done func(error)) {
		tb.MH.ConnectHome(tb.Eth, RouterHomeAddr, done)
	}); err != nil {
		return nil, err
	}

	// Servers on the department correspondent.
	broker, err := app.NewBroker(tb.CH, ip.Unspecified, loadedBrokerPort, "broker")
	if err != nil {
		return nil, err
	}
	web, err := app.NewHTTPServer(tb.CH, ip.Unspecified, loadedHTTPPort, "web", app.EchoHandler)
	if err != nil {
		return nil, err
	}

	// MQTT clients: the mobile host's agent and the campus correspondent's.
	mh := app.NewClient(tb.MHTS, "mh-agent")
	campus := app.NewClient(tb.CampusCH, "campus-agent")
	connected := 0
	onConnack := func(err error) {
		if err == nil {
			connected++
		}
	}
	if err := mh.Connect(CHAddr, loadedBrokerPort, onConnack); err != nil {
		return nil, err
	}
	if err := campus.Connect(CHAddr, loadedBrokerPort, onConnack); err != nil {
		return nil, err
	}
	if !runUntil(tb, 30*time.Second, func() bool { return connected == 2 }) {
		return nil, fmt.Errorf("loadedhandoff: mqtt clients did not connect (%d/2)", connected)
	}

	// HTTP clients on the mobile host, one per discipline.
	webOpen := app.NewHTTPClient(tb.MHTS, "web-open")
	webClosed := app.NewHTTPClient(tb.MHTS, "web-closed")
	if err := webOpen.Connect(CHAddr, loadedHTTPPort, nil); err != nil {
		return nil, err
	}
	if err := webClosed.Connect(CHAddr, loadedHTTPPort, nil); err != nil {
		return nil, err
	}

	// Flows and their trackers. Telemetry MH -> campus, commands campus ->
	// MH, both QoS 1; request/response MH -> department server.
	var flows []loadedFlow
	var pubFlows []*app.PubFlow
	subAcks := 0
	for i := 0; i < loadedTelemetryFlows; i++ {
		topic := fmt.Sprintf("telemetry/mh/%d", i)
		ft := stats.NewFlowTracker(topic)
		if err := campus.Subscribe(topic, 1, app.SinkHandler(tb.Loop, ft), func() { subAcks++ }); err != nil {
			return nil, err
		}
		flows = append(flows, loadedFlow{
			name: topic, proto: "mqtt-qos1", model: "open-loop", size: loadedTelemetrySize, flow: ft,
		})
		pubFlows = append(pubFlows, app.NewPubFlow(mh, ft, topic, loadedTelemetryInterval, 1, loadedTelemetrySize))
	}
	cmdTracker := stats.NewFlowTracker("cmd/mh")
	if err := mh.Subscribe("cmd/mh", 1, app.SinkHandler(tb.Loop, cmdTracker), func() { subAcks++ }); err != nil {
		return nil, err
	}
	flows = append(flows, loadedFlow{
		name: "cmd/mh", proto: "mqtt-qos1", model: "open-loop", size: loadedCommandSize, flow: cmdTracker,
	})
	pubFlows = append(pubFlows, app.NewPubFlow(campus, cmdTracker, "cmd/mh", loadedCommandInterval, 1, loadedCommandSize))

	if !runUntil(tb, 30*time.Second, func() bool { return subAcks == loadedTelemetryFlows+1 }) {
		return nil, fmt.Errorf("loadedhandoff: subscriptions not acked (%d/%d)", subAcks, loadedTelemetryFlows+1)
	}

	openTracker := stats.NewFlowTracker("http/open")
	closedTracker := stats.NewFlowTracker("http/closed")
	flows = append(flows,
		loadedFlow{name: "http/open", proto: "http", model: "open-loop", size: loadedReqSize, flow: openTracker},
		loadedFlow{name: "http/closed", proto: "http", model: "closed-loop", size: loadedReqSize, flow: closedTracker},
	)
	reqFlows := []*app.ReqFlow{
		app.NewReqFlow(webOpen, openTracker, "/open", loadedOpenReqInterval, false, loadedReqSize),
		app.NewReqFlow(webClosed, closedTracker, "/closed", loadedThinkTime, true, loadedReqSize),
	}

	for _, f := range pubFlows {
		f.Start()
	}
	for _, f := range reqFlows {
		f.Start()
	}
	tb.Run(handoffSettle)

	// The Figure-5 itinerary, exactly as RunHandoff walks it.
	moves := []struct {
		name string
		f    func(done func(error))
	}{
		{"cold to department", func(done func(error)) {
			tb.MoveEthTo(tb.DeptNet)
			tb.MH.ColdSwitch(tb.Eth, done)
		}},
		{"same-subnet address switch", func(done func(error)) {
			tb.MH.SwitchAddress(ip.MustParseAddr("36.8.0.200"), done)
		}},
		{"cold to radio", func(done func(error)) {
			tb.MH.ColdSwitch(tb.Strip, done)
		}},
		{"hot back to wire", func(done func(error)) {
			tb.Eth.Iface().Device().BringUp(func() {
				tb.MH.Prepare(tb.Eth, func(err error) {
					if err != nil {
						done(err)
						return
					}
					tb.MH.HotSwitch(tb.Eth, done)
				})
			})
		}},
		{"cold home", func(done func(error)) {
			tb.MoveEthTo(tb.HomeNet)
			tb.MH.ColdSwitchHome(tb.Eth, RouterHomeAddr, done)
		}},
	}
	for _, mv := range moves {
		if err := step(mv.name, mv.f); err != nil {
			return nil, err
		}
		tb.Run(handoffSettle)
	}

	// Stop generating, then drain until every flow's sent count has been
	// received — TCP recovery after the last move may still be replaying.
	for _, f := range pubFlows {
		f.Stop()
	}
	for _, f := range reqFlows {
		f.Stop()
	}
	drained := runUntil(tb, loadedDrainWait, func() bool {
		for _, lf := range flows {
			sent, received, _, _ := lf.flow.Totals()
			if received < sent {
				return false
			}
		}
		return true
	})
	// A final settle so PUBACKs and spans close too.
	tb.Run(2 * time.Second)

	// Attribution windows: every closed root handoff span, in start order.
	var windows []stats.Window
	for _, sp := range tb.Tracer.Spans() {
		if sp.Parent == 0 && handoffRootKinds[sp.Kind] && sp.End >= sp.Start {
			windows = append(windows, stats.Window{Kind: sp.Kind, Start: sp.Start, End: sp.End})
		}
	}

	rows := LoadedHandoffRows{
		GraceNS:         int64(HandoffGrace),
		QoS1ExactlyOnce: true,
		BrokerStats:     broker.Stats(),
		HTTPServerStats: web.Stats(),
		DroppedEvents:   tb.Tracer.Dropped(),
		DroppedSpans:    tb.Tracer.DroppedSpans(),
	}
	for _, lf := range flows {
		sent, received, lost, reorders := lf.flow.Totals()
		dups, _ := lf.flow.Anomalies()
		if lf.proto == "mqtt-qos1" && (dups != 0 || lost != 0) {
			rows.QoS1ExactlyOnce = false
		}
		lat := lf.flow.LatencySeries()
		row := LoadedFlowRow{
			Flow:              lf.name,
			Proto:             lf.proto,
			Model:             lf.model,
			PacketsSent:       sent,
			PacketsReceived:   received,
			PacketsLost:       lost,
			Reorders:          reorders,
			Duplicates:        dups,
			BaselineLatencyNS: int64(lf.flow.Baseline()),
			MeanLatencyNS:     int64(lat.Mean()),
			P99LatencyNS:      int64(lat.Percentile(99)),
			MaxLatencyNS:      int64(lat.Max()),
			ThroughputBps:     goodputBps(received, lf.size, experimentSpan(lf.flow)),
		}
		for _, rep := range lf.flow.Analyze(windows, HandoffGrace) {
			lo := sim.Time(rep.StartNS).Add(-HandoffGrace)
			hi := sim.Time(rep.EndNS).Add(HandoffGrace)
			delivered := lf.flow.ReceivedBetween(lo, hi)
			row.Handoffs = append(row.Handoffs, LoadedWindowRow{
				DisruptionReport:  rep,
				DeliveredInWindow: delivered,
				ThroughputBps:     goodputBps(delivered, lf.size, hi.Sub(lo)),
			})
		}
		rows.Flows = append(rows.Flows, row)
	}
	if !drained {
		// Loss under a transport that never gives up means the drain window
		// was too short or a connection died; surface it rather than
		// exporting a silently-degraded table.
		return nil, fmt.Errorf("loadedhandoff: flows did not drain within %v", loadedDrainWait)
	}

	res := &LoadedHandoffResult{Rows: rows, Tracer: tb.Tracer}
	res.Export = &Export{
		Experiment: "loadedhandoff",
		Seed:       seed,
		Snapshots:  []*metrics.Snapshot{tb.SnapshotMetrics("loadedhandoff")},
		Rows:       res.Rows,
	}
	return res, nil
}

// goodputBps converts delivered messages of size bytes over span to bits
// per second, in integer arithmetic for byte-stable exports.
func goodputBps(delivered, size int, span time.Duration) int64 {
	if span <= 0 {
		return 0
	}
	bits := int64(delivered) * int64(size) * 8
	return bits * int64(time.Second) / int64(span)
}

// experimentSpan is the flow's active interval: first send to last arrival.
func experimentSpan(f *stats.FlowTracker) time.Duration {
	first, last, ok := f.Span()
	if !ok {
		return 0
	}
	return last.Sub(first)
}
