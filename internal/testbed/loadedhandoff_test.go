package testbed

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/app"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/stats"
)

// The loaded observatory's export contract: same seed, byte-identical
// export, regardless of how many runs precede it in the process.
func TestLoadedHandoffDeterminism(t *testing.T) {
	run := func() string {
		res, err := RunLoadedHandoff(7)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.Export.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	e1, e2 := run(), run()
	if e1 != e2 {
		t.Error("BENCH_loadedhandoff export diverged between same-seed runs")
	}
}

func TestLoadedHandoffScoring(t *testing.T) {
	res, err := RunLoadedHandoff(1996)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows

	// Every publication and HTTP flow in the spec: three telemetry flows,
	// the command flow, and two HTTP flows.
	spec := MustScenario("loadedhandoff")
	wantFlows := len(spec.Traffic.MQTT.Pubs) + len(spec.Traffic.HTTP.Flows)
	if len(rows.Flows) != wantFlows {
		t.Fatalf("flows = %d, want %d", len(rows.Flows), wantFlows)
	}

	// The same six root windows as the bare handoff observatory, scored
	// against every flow.
	for _, f := range rows.Flows {
		if len(f.Handoffs) != 6 {
			t.Fatalf("flow %s has %d windows, want 6", f.Flow, len(f.Handoffs))
		}
		if f.PacketsSent == 0 {
			t.Errorf("flow %s never sent", f.Flow)
		}
		if f.PacketsLost != 0 || f.PacketsReceived != f.PacketsSent {
			t.Errorf("flow %s lost traffic over a reliable transport: %+v", f.Flow, f)
		}
		if f.MaxLatencyNS < f.BaselineLatencyNS {
			t.Errorf("flow %s max latency below baseline", f.Flow)
		}
		if f.ThroughputBps <= 0 {
			t.Errorf("flow %s throughput = %d", f.Flow, f.ThroughputBps)
		}
	}

	// QoS 1 exactly-once must hold across the whole itinerary.
	if !rows.QoS1ExactlyOnce {
		t.Error("QoS 1 exactly-once conformance failed")
	}
	for _, f := range rows.Flows {
		if f.Duplicates != 0 {
			t.Errorf("flow %s saw %d duplicate deliveries", f.Flow, f.Duplicates)
		}
	}

	// Handoffs must actually hurt: at least one window shows a blackout
	// beyond its own duration's jitter and a latency spike over baseline.
	sawBlackout := false
	for _, f := range rows.Flows {
		for _, w := range f.Handoffs {
			if w.BlackoutNS > int64(time.Second) && w.MaxLatencySpikeNS > 0 {
				sawBlackout = true
			}
		}
	}
	if !sawBlackout {
		t.Error("no flow shows handoff disruption; the load model is not measuring")
	}

	// The broker carried the pub/sub fleet, the server the request mix.
	if rows.BrokerStats.Publishes == 0 || rows.BrokerStats.Delivered == 0 {
		t.Errorf("broker idle: %+v", rows.BrokerStats)
	}
	if rows.HTTPServerStats.Requests == 0 {
		t.Errorf("http server idle: %+v", rows.HTTPServerStats)
	}

	// The app layer traced its operations under the app.* vocabulary.
	for _, kind := range []string{"app.mqtt.session", "app.mqtt.connect", "app.mqtt.publish", "app.mqtt.subscribe", "app.http.request"} {
		if len(res.Tracer.FindSpans(kind)) == 0 {
			t.Errorf("no %s spans recorded", kind)
		}
	}
	// Publish spans stretched by a handoff are the app-level cost signal:
	// at least one must outlast the baseline RTT by a wide margin.
	stretched := false
	for _, sp := range res.Tracer.FindSpans("app.mqtt.publish") {
		if sp.End >= sp.Start && sp.End.Sub(sp.Start) > time.Second {
			stretched = true
			break
		}
	}
	if !stretched {
		t.Error("no publish span shows handoff-induced stall")
	}
}

// A QoS 1 publish issued while a cold switch is in progress must arrive at
// the subscriber exactly once: the transport replays lost segments, and the
// app layer never re-publishes, so handoffs cannot duplicate or drop it.
func TestQoS1ExactlyOnceAcrossHandoff(t *testing.T) {
	tb := New(42)
	defer tb.Close()
	tb.MustConnectHome()

	const brokerPort = 1883
	if _, err := app.NewBroker(tb.CH, ip.Unspecified, brokerPort, "broker"); err != nil {
		t.Fatal(err)
	}
	pub := app.NewClient(tb.MHTS, "mh-pub")
	sub := app.NewClient(tb.CampusCH, "campus-sub")
	if err := pub.Connect(CHAddr, brokerPort, nil); err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(CHAddr, brokerPort, nil); err != nil {
		t.Fatal(err)
	}
	if !runUntil(tb, 10*time.Second, func() bool { return pub.Connected() && sub.Connected() }) {
		t.Fatal("clients did not connect")
	}

	tracker := stats.NewFlowTracker("inflight")
	if err := sub.Subscribe("inflight", 1, app.SinkHandler(tb.Loop, tracker), nil); err != nil {
		t.Fatal(err)
	}
	tb.Run(time.Second)

	// Begin the cold switch, and publish while it is still in progress: the
	// segments carrying the publish race the address change.
	switched := false
	tb.MoveEthTo(tb.DeptNet)
	tb.MH.ColdSwitch(tb.Eth, func(err error) {
		if err != nil {
			t.Errorf("cold switch: %v", err)
		}
		switched = true
	})
	seq := uint64(1)
	tracker.Sent(seq, tb.Loop.Now())
	acked := false
	if err := pub.Publish("inflight", app.Payload(seq, 16), 1, false, func() { acked = true }); err != nil {
		t.Fatal(err)
	}
	if !runUntilDone(tb, &switched, 30*time.Second) {
		t.Fatal("cold switch did not complete")
	}
	if !runUntilDone(tb, &acked, 30*time.Second) {
		t.Fatal("in-flight QoS 1 publish never acked after handoff")
	}
	tb.Run(5 * time.Second)

	sent, received, lost, _ := tracker.Totals()
	dups, unknown := tracker.Anomalies()
	if sent != 1 || received != 1 || lost != 0 || dups != 0 || unknown != 0 {
		t.Fatalf("exactly-once violated: sent=%d received=%d lost=%d dups=%d unknown=%d",
			sent, received, lost, dups, unknown)
	}
}

func TestLoadedHandoffStringRendering(t *testing.T) {
	res, err := RunLoadedHandoff(3)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"LOADEDHANDOFF", "exactly-once", "telemetry/mh/0", "http/closed", "worst-hit"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
