package testbed

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
)

// handoffScenario attaches the mobile host on the visited Ethernet, streams
// UDP echoes to its home address, performs a same-subnet address switch
// mid-stream, and quiesces. It returns the testbed still open for
// inspection; callers must Close it.
func handoffScenario(t *testing.T, seed int64) *Testbed {
	t.Helper()
	tb := New(seed)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)

	probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	probe.Start()
	tb.Run(time.Second)

	done := false
	var swErr error
	tb.MH.SwitchAddress(ip.MustParseAddr("36.8.0.200"), func(err error) { swErr, done = err, true })
	tb.Run(5 * time.Second)
	if !done || swErr != nil {
		t.Fatalf("address switch: done=%v err=%v", done, swErr)
	}
	tb.Run(time.Second)
	probe.Pause()
	tb.Run(2 * time.Second) // drain in-flight packets
	return tb
}

func TestHandoffTunnelConservation(t *testing.T) {
	tb := handoffScenario(t, 7)
	defer tb.Close()

	mh := tb.MH.Tunnel().Stats()
	ha := tb.HA.Tunnel().Stats()

	// Reverse path (MH -> HA) runs over the lossless visited Ethernet, so
	// after quiescing every packet the mobile host encapsulated must be
	// accounted for at the home agent: decapsulated or dropped by the peer
	// or inner-packet checks.
	if mh.Encapsulated != ha.Decapsulated+ha.DropPeer+ha.DropBadInner {
		t.Errorf("reverse tunnel leak: MH encap %d != HA decap %d + drop_peer %d + drop_bad_inner %d",
			mh.Encapsulated, ha.Decapsulated, ha.DropPeer, ha.DropBadInner)
	}
	if mh.Encapsulated == 0 {
		t.Error("no reverse-tunnel traffic flowed")
	}
	// Forward path (HA -> MH) may lose packets tunneled to the stale
	// care-of address during the switch window, never gain them.
	if ha.Encapsulated < mh.Decapsulated {
		t.Errorf("forward tunnel gained packets: HA encap %d < MH decap %d", ha.Encapsulated, mh.Decapsulated)
	}
	if mh.Decapsulated == 0 {
		t.Error("no forward-tunnel traffic flowed")
	}

	// The registry view must agree with the struct view.
	snap := tb.Metrics.Snapshot()
	enc := snap.Get("tunnel.endpoint.encapsulated", metrics.L("host", "mh"), metrics.L("vif", "vif0"))
	if enc == nil || enc.Counter == nil || *enc.Counter != mh.Encapsulated {
		t.Errorf("registry encap view disagrees with Stats(): %+v vs %d", enc, mh.Encapsulated)
	}

	// The switch re-registered, so the registration-latency histogram has
	// observations.
	lat := snap.Get("mip.mh.registration_latency", metrics.L("host", "mh"))
	if lat == nil || lat.Histogram == nil || lat.Histogram.Count < 1 {
		t.Errorf("registration latency histogram empty: %+v", lat)
	}
}

func TestHandoffSnapshotDeterminism(t *testing.T) {
	render := func() []byte {
		tb := handoffScenario(t, 11)
		defer tb.Close()
		var buf bytes.Buffer
		if err := tb.SnapshotMetrics("handoff").WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed handoff snapshots are not byte-identical")
	}
}

func TestPacketLifecycleTimeline(t *testing.T) {
	tb := handoffScenario(t, 13)
	defer tb.Close()

	// Find a packet the home agent encapsulated and follow its lifecycle:
	// it must reach the mobile host's VIF and be decapsulated.
	var traced uint64
	for _, e := range tb.Packets.Events() {
		if e.Point == "tunnel.encap" && e.Node == "router" {
			traced = e.Pkt
		}
	}
	if traced == 0 {
		t.Fatal("no tunnel.encap event recorded at the home agent")
	}
	tl := tb.Packets.Timeline(traced)
	points := make(map[string]bool)
	for _, e := range tl {
		points[e.Node+"/"+e.Point] = true
	}
	if !points["router/tunnel.encap"] || !points["mh/tunnel.decap"] {
		var got []string
		for _, e := range tl {
			got = append(got, fmt.Sprintf("%v %s %s %s", e.At, e.Node, e.Point, e.Detail))
		}
		t.Fatalf("timeline for pkt %d missing encap/decap hops:\n%v", traced, got)
	}
	// Events within one packet's timeline are causally ordered.
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatalf("timeline out of order at %d: %+v", i, tl)
		}
	}
}
