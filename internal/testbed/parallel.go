package testbed

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"mosquitonet/internal/metrics"
)

// The parallel experiment measures what the shard-parallel scheduler buys
// on this machine: it runs the scale fleet once sequentially (workers=1)
// and once per worker count of a sweep, checks every run is byte-identical
// to the sequential one (rows and metrics snapshots — determinism is a
// hard invariant, not a best effort), and reports wall-clock time for
// each.
//
// Wall-clock numbers are machine-dependent and excluded from the
// deterministic portion of the export contract: two runs of this
// experiment produce identical Rows except for the wall_ms_* fields,
// speedup, and worker utilization. runtime.NumCPU and GOMAXPROCS are
// recorded alongside so a reader can tell whether a speedup was even
// possible — on a single-core machine (num_cpu = 1) the parallel run
// measures pure coordination overhead and a ~1.0x speedup is the expected
// reading, not a regression.

// ParallelRow is one (fleet size, worker count) comparison between
// sequential and parallel execution of the identical workload.
type ParallelRow struct {
	Hosts      int     `json:"hosts"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Events     uint64  `json:"events"`
	Epochs     uint64  `json:"epochs"`
	Identical  bool    `json:"identical"`
	WallMsSeq  float64 `json:"wall_ms_workers1"`
	WallMsPar  float64 `json:"wall_ms_workersN"`
	Speedup    float64 `json:"speedup"`
	EventsPerS float64 `json:"events_per_wall_second_parallel"`
	// WorkerUtilization[w] is the fraction of the parallel run's
	// wall-clock that worker w spent executing shard epochs (as opposed
	// to waiting at barriers or for work). Machine-dependent provenance,
	// like the wall_ms fields.
	WorkerUtilization []float64 `json:"worker_utilization"`
}

// ParallelResult is the full parallel experiment.
type ParallelResult struct {
	Rows   []ParallelRow
	Export *Export
}

func (r *ParallelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel: sharded scale fleet, workers=1 vs workers=N (%d CPUs, GOMAXPROCS=%d)\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "  %6s  %6s  %7s  %10s  %9s  %10s  %10s  %7s  %9s  %s\n",
		"hosts", "shards", "workers", "events", "identical", "seq-ms", "par-ms", "speedup", "ev/wall-s", "util")
	for _, row := range r.Rows {
		var util strings.Builder
		for w, u := range row.WorkerUtilization {
			if w > 0 {
				util.WriteByte(' ')
			}
			fmt.Fprintf(&util, "%.0f%%", 100*u)
		}
		fmt.Fprintf(&b, "  %6d  %6d  %7d  %10d  %9v  %10.1f  %10.1f  %6.2fx  %9.0f  %s\n",
			row.Hosts, row.Shards, row.Workers, row.Events, row.Identical,
			row.WallMsSeq, row.WallMsPar, row.Speedup, row.EventsPerS, util.String())
	}
	return b.String()
}

// workerSweep returns the worker counts to measure for a configured
// maximum: powers of two up to max, always ending at max itself.
func workerSweep(max int) []int {
	if max < 2 {
		return []int{max}
	}
	var sweep []int
	for w := 2; w < max; w *= 2 {
		sweep = append(sweep, w)
	}
	return append(sweep, max)
}

// RunParallel compares sequential and parallel execution of the scale
// fleet at each size, measuring every worker count in the sweep up to
// workers. The deterministic outputs must match byte-for-byte between the
// runs; a mismatch is returned as an error, never papered over.
func RunParallel(seed int64, fleets []int, workers int) (*ParallelResult, error) {
	res := &ParallelResult{Export: &Export{Experiment: "parallel", Seed: seed}}
	for _, n := range fleets {
		//lint:allow nowallclock measuring the scheduler's wall-clock speedup is this experiment's purpose; simulated behaviour never reads these values
		t0 := time.Now()
		rowSeq, snapSeq, _, err := runScaleFleetMeasured(seed, n, 1)
		if err != nil {
			return nil, err
		}
		//lint:allow nowallclock wall-clock measurement of the sequential run
		seqWall := time.Since(t0)

		for _, w := range workerSweep(workers) {
			//lint:allow nowallclock wall-clock measurement of the parallel run
			t1 := time.Now()
			rowPar, snapPar, busy, err := runScaleFleetMeasured(seed, n, w)
			if err != nil {
				return nil, err
			}
			//lint:allow nowallclock wall-clock measurement of the parallel run
			parWall := time.Since(t1)

			identical, err := exportsEqual(rowSeq, snapSeq, rowPar, snapPar)
			if err != nil {
				return nil, err
			}
			if !identical {
				return nil, fmt.Errorf("parallel: workers=%d diverged from workers=1 at %d hosts", w, n)
			}

			row := ParallelRow{
				Hosts:      n,
				Shards:     rowSeq.Shards,
				Workers:    w,
				NumCPU:     runtime.NumCPU(),
				GoMaxProcs: runtime.GOMAXPROCS(0),
				Events:     rowSeq.Events,
				Epochs:     rowSeq.Epochs,
				Identical:  identical,
				WallMsSeq:  float64(seqWall.Microseconds()) / 1000,
				WallMsPar:  float64(parWall.Microseconds()) / 1000,
				EventsPerS: float64(rowSeq.Events) / parWall.Seconds(),
			}
			if parWall > 0 {
				row.Speedup = seqWall.Seconds() / parWall.Seconds()
				row.WorkerUtilization = make([]float64, len(busy))
				for i, d := range busy {
					row.WorkerUtilization[i] = d.Seconds() / parWall.Seconds()
				}
			}
			res.Rows = append(res.Rows, row)
		}
		res.Export.Snapshots = append(res.Export.Snapshots, snapSeq)
	}
	res.Export.Rows = res.Rows
	return res, nil
}

// exportsEqual compares the deterministic outputs of two fleet runs
// byte-for-byte through their JSON encodings.
func exportsEqual(rowA ScaleRow, snapA *metrics.Snapshot, rowB ScaleRow, snapB *metrics.Snapshot) (bool, error) {
	if rowA != rowB {
		return false, nil
	}
	var ba, bb bytes.Buffer
	if err := snapA.WriteJSON(&ba); err != nil {
		return false, err
	}
	if err := snapB.WriteJSON(&bb); err != nil {
		return false, err
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes()), nil
}
