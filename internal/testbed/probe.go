package testbed

import (
	"encoding/binary"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/transport"
)

// EchoProbe reproduces the paper's measurement workload: a correspondent
// host sends sequence-numbered UDP packets to the mobile host's home
// address at a fixed interval, and the mobile host echoes each one back.
// Loss is counted as sent-but-never-echoed.
type EchoProbe struct {
	loop     *sim.Loop
	src      *transport.UDPSocket
	dst      ip.Addr
	port     uint16
	interval time.Duration

	seq      uint64
	received uint64
	seen     map[uint64]bool // dedup: simultaneous bindings duplicate echoes
	paused   bool
	stopped  bool
	echoSock *transport.UDPSocket
}

// NewEchoProbe installs the echo responder on the mobile host's transport
// stack (bound to the wildcard address, so it answers via mobile IP) and
// prepares the sender on from. Call Start to begin transmission.
func NewEchoProbe(loop *sim.Loop, from, mh *transport.Stack, dst ip.Addr, port uint16, interval time.Duration) (*EchoProbe, error) {
	p := &EchoProbe{loop: loop, dst: dst, port: port, interval: interval, paused: true, seen: make(map[uint64]bool)}
	var echo *transport.UDPSocket
	echo, err := mh.UDP(ip.Unspecified, port, func(d transport.Datagram) {
		echo.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		return nil, err
	}
	p.echoSock = echo
	src, err := from.UDP(ip.Unspecified, 0, func(d transport.Datagram) {
		if len(d.Payload) < 8 {
			//lint:allow dropaccounting non-probe datagram ignored; probe loss is accounted as sent minus received
			return
		}
		seq := binary.BigEndian.Uint64(d.Payload)
		if p.seen[seq] {
			//lint:allow dropaccounting duplicate delivery via simultaneous bindings already counted as received
			return
		}
		p.seen[seq] = true
		p.received++
	})
	if err != nil {
		return nil, err
	}
	p.src = src
	return p, nil
}

// Start (or resume) transmission.
func (p *EchoProbe) Start() {
	if !p.paused || p.stopped {
		return
	}
	p.paused = false
	p.tick()
}

// Pause suspends transmission; in-flight echoes still count on arrival.
func (p *EchoProbe) Pause() { p.paused = true }

// Stop ends the probe permanently and releases its sockets.
func (p *EchoProbe) Stop() {
	p.stopped = true
	p.paused = true
	p.src.Close()
	p.echoSock.Close()
}

// Sent returns the number of probes transmitted.
func (p *EchoProbe) Sent() uint64 { return p.seq }

// Received returns the number of echoes received.
func (p *EchoProbe) Received() uint64 { return p.received }

// Snapshot returns (sent, received) counters.
func (p *EchoProbe) Snapshot() (uint64, uint64) { return p.seq, p.received }

func (p *EchoProbe) tick() {
	if p.paused || p.stopped {
		return
	}
	p.seq++
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], p.seq)
	p.src.SendTo(p.dst, p.port, payload[:])
	p.loop.Schedule(p.interval, p.tick)
}

// LossBetween computes packets lost within a window bounded by two
// snapshots taken while the probe was quiescent (paused and drained).
func LossBetween(sentBefore, recvBefore, sentAfter, recvAfter uint64) int {
	return int((sentAfter - sentBefore) - (recvAfter - recvBefore))
}
