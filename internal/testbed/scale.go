package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

// The scale experiment measures the simulator itself rather than the
// paper's protocol: N mobile hosts roam concurrently between two foreign
// subnets while exchanging UDP echo traffic with correspondents. It is
// the regime where per-event and per-packet costs dominate, so it doubles
// as the fleet-scale performance baseline: BenchmarkScaleRoaming drives
// the same harness and reports wall-clock ns/op, B/op, and allocs/op on
// top of the deterministic virtual-time quantities recorded here.
//
// The topology is built for shard-parallel execution (sim.ShardSet): the
// fleet is partitioned into independent campus shards — each with its own
// home/department/campus subnets, router, collocated home agent, and a
// local correspondent — joined to a hub shard (backbone router plus a
// backbone correspondent) only by point-to-point trunks whose propagation
// delay provides the conservative lookahead. Most traffic stays inside a
// shard; every fourth probe crosses the backbone, exercising the trunk
// handoff path. The shard count is a pure function of the fleet size, so
// results are byte-identical at any worker count, including workers=1.
//
// Telemetry configuration is deliberately asymmetric with the Figure 5
// testbed: per-shard metrics registries are enabled (the export needs
// counters, merged deterministically at the end) but the packet-lifecycle
// log is NOT. A fleet-scale perf run cannot afford per-hop trace records,
// and running without a packet log also exercises every layer's
// disabled-telemetry path.

// Scale experiment shape, read from the scale scenario spec
// (testdata/scenarios/scale.json). Kept modest so one fleet fits a CI
// smoke run; the event count still reaches the millions at 1000 hosts
// because every frame on a shared Ethernet segment fans out to all
// attached devices. The spec's delay fields mirror the calibration
// constants in calib.go, so the fleet runs the same per-packet costs as
// the Figure 5 testbed.
var scaleFleetSpec = MustScenario("scale").Topology.Fleet

var (
	scaleDuration      = scaleFleetSpec.Duration.D()      // virtual runtime per fleet
	scaleSwitchPeriod  = scaleFleetSpec.SwitchPeriod.D()  // roam cadence per host
	scaleProbeInterval = scaleFleetSpec.ProbeInterval.D() // echo probe cadence per host
	scaleProbeStart    = scaleFleetSpec.ProbeStart.D()
	scaleCrossEvery    = scaleFleetSpec.CrossEvery // every Nth probe targets the backbone correspondent
	scaleStagger       = scaleFleetSpec.Stagger.D()
)

// scaleShardCount maps fleet size to the number of campus shards (the hub
// shard comes on top). Derived from topology size only — never from the
// worker count — so shard assignment, per-shard seeds, and results are
// identical no matter how many goroutines execute the shards. The upper
// tiers keep per-shard fleets in the low thousands: at 100k hosts, 64
// campus shards of ~1560 hosts each.
func scaleShardCount(n int) int {
	switch {
	case n >= 65536:
		return 64
	case n >= 16384:
		return 32
	case n >= 1024:
		return 16
	case n >= 256:
		return 8
	case n >= 64:
		return 4
	case n >= 16:
		return 2
	default:
		return 1
	}
}

// scaleBarrierGroups partitions the shard indices for the two-level epoch
// barrier: campus shards in regions of up to scaleGroupSize, the hub on
// its own. Like the shard count, it is a pure function of the topology,
// and grouping is pure mechanism besides (sim.SetGroups), so it cannot
// affect results.
var scaleGroupSize = scaleFleetSpec.BarrierGroupSize

func scaleBarrierGroups(numFleet int) [][]int {
	var groups [][]int
	for lo := 0; lo < numFleet; lo += scaleGroupSize {
		hi := lo + scaleGroupSize
		if hi > numFleet {
			hi = numFleet
		}
		g := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			g = append(g, i)
		}
		groups = append(groups, g)
	}
	return append(groups, []int{numFleet}) // the hub shard
}

// ScaleRow is one fleet size's deterministic outcome. Every field derives
// from virtual time and seeded randomness only, so BENCH_scale.json is
// byte-identical across runs with the same seed at any worker count.
type ScaleRow struct {
	Hosts            int     `json:"hosts"`
	Shards           int     `json:"shards"`
	Events           uint64  `json:"events"`
	VirtualSeconds   float64 `json:"virtual_seconds"`
	EventsPerVirtSec float64 `json:"events_per_virtual_second"`
	QueueHighWater   int     `json:"queue_high_water"`
	Epochs           uint64  `json:"epochs"`
	CrossFrames      uint64  `json:"cross_shard_frames"`
	Registrations    uint64  `json:"registrations"`
	ProbesSent       uint64  `json:"probes_sent"`
	ProbesEchoed     uint64  `json:"probes_echoed"`
	Encapsulated     uint64  `json:"encapsulated"`

	RouteCacheHits          uint64  `json:"route_cache_hits"`
	RouteCacheMisses        uint64  `json:"route_cache_misses"`
	RouteCacheInvalidations uint64  `json:"route_cache_invalidations"`
	RouteCacheHitRate       float64 `json:"route_cache_hit_rate"`
}

// ScaleResult is the full scale experiment: one row per fleet size.
type ScaleResult struct {
	Rows   []ScaleRow
	Export *Export
}

func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: concurrent roaming fleets (%v virtual per fleet)\n", scaleDuration)
	fmt.Fprintf(&b, "  %6s  %6s  %10s  %12s  %8s  %6s  %7s  %7s  %7s\n",
		"hosts", "shards", "events", "ev/virt-sec", "queue-hw", "regs", "probes", "echoed", "cache%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6d  %6d  %10d  %12.0f  %8d  %6d  %7d  %7d  %6.1f%%\n",
			row.Hosts, row.Shards, row.Events, row.EventsPerVirtSec, row.QueueHighWater,
			row.Registrations, row.ProbesSent, row.ProbesEchoed, 100*row.RouteCacheHitRate)
	}
	return b.String()
}

// RunScale runs the roaming-fleet scale experiment for each fleet size,
// sequentially (workers=1).
func RunScale(seed int64, fleets []int) (*ScaleResult, error) {
	return RunScaleWorkers(seed, fleets, 1)
}

// RunScaleWorkers runs the scale experiment with the given worker-pool
// size. Results are byte-identical at any worker count; only wall-clock
// time may differ.
func RunScaleWorkers(seed int64, fleets []int, workers int) (*ScaleResult, error) {
	res := &ScaleResult{Export: &Export{Experiment: "scale", Seed: seed}}
	for _, n := range fleets {
		row, snap, err := RunScaleFleetWorkers(seed, n, workers)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.Export.Snapshots = append(res.Export.Snapshots, snap)
	}
	res.Export.Rows = res.Rows
	return res, nil
}

// scaleAddr spreads host i across the low octets of a /16, skipping the
// .0 host octet range where the infrastructure (router, correspondent)
// lives.
func scaleAddr(pfx ip.Prefix, i int) ip.Addr {
	return ip.Addr{pfx.Addr[0], pfx.Addr[1], byte(1 + i/200), byte(1 + i%200)}
}

// Fixed backbone addressing: the hub shard's subnet and its well-known
// occupants.
var (
	scaleBackbonePfx = ip.Prefix{Addr: ip.Addr{10, 200, 0, 0}, Bits: 16}
	scaleHubAddr     = ip.Addr{10, 200, 0, 1}
	scaleBackboneCH  = ip.Addr{10, 200, 0, 7}
)

// scaleShardPrefix returns shard k's subnet plane: which = 0 home,
// 1 department, 2 campus.
func scaleShardPrefix(k, which int) ip.Prefix {
	return ip.Prefix{Addr: ip.Addr{10, byte(10 + 3*k + which), 0, 0}, Bits: 16}
}

func scaleRouterAddr(k, which int) ip.Addr {
	a := scaleShardPrefix(k, which).Addr
	a[3] = 1
	return a
}

// RunScaleFleet runs one fleet of n roaming mobile hosts sequentially and
// returns its deterministic row plus a compact metrics snapshot.
func RunScaleFleet(seed int64, n int) (ScaleRow, *metrics.Snapshot, error) {
	return RunScaleFleetWorkers(seed, n, 1)
}

// scaleMH is one mobile host of the fleet with its two managed foreign
// interfaces and its probe socket.
type scaleMH struct {
	m    *mip.MobileHost
	mis  [2]*mip.ManagedIface
	sock *transport.UDPSocket
}

// scaleFleet is a fully constructed (but not yet run) scale topology. The
// split between construction and execution exists so the footprint
// benchmark can weigh a resident fleet without running it.
type scaleFleet struct {
	n         int
	numShards int
	loops     []*sim.Loop
	regs      []*metrics.Registry
	ss        *sim.ShardSet

	// Per-shard counters, indexed by shard so each is written only by its
	// own shard's goroutine during epochs.
	probesSent   []uint64
	probesEchoed []uint64

	fleet []*scaleMH
	has   []*mip.HomeAgent
	// cacheHosts collects every stack host in deterministic construction
	// order, for summing route-cache counters at the end.
	cacheHosts []*stack.Host
}

// release drops the fleet's loops from the process-global metrics
// association.
func (f *scaleFleet) release() {
	for _, lp := range f.loops {
		metrics.Release(lp)
	}
}

// RunScaleFleetWorkers runs one fleet of n roaming mobile hosts on a
// sharded topology executed by the given number of worker goroutines, and
// returns its deterministic row plus a compact metrics snapshot (loop-
// level metrics only, merged across shards; a full per-host snapshot at
// 1000 hosts would dwarf the export).
func RunScaleFleetWorkers(seed int64, n, workers int) (ScaleRow, *metrics.Snapshot, error) {
	row, snap, _, err := runScaleFleetMeasured(seed, n, workers)
	return row, snap, err
}

// runScaleFleetMeasured is RunScaleFleetWorkers plus the per-worker busy
// wall-clock readings, which the parallel experiment turns into
// utilization provenance. The busy slice is empty for workers=1.
func runScaleFleetMeasured(seed int64, n, workers int) (ScaleRow, *metrics.Snapshot, []time.Duration, error) {
	fl, err := buildScaleFleet(seed, n, workers)
	if err != nil {
		return ScaleRow{}, nil, nil, err
	}
	defer fl.release()

	fl.ss.RunFor(scaleDuration)

	row := fl.row()
	snap := fl.snapshot()
	return row, snap, fl.ss.WorkerBusy(), nil
}

// buildScaleFleet constructs the sharded scale topology for n mobile
// hosts without running it: campus shards joined to a hub shard by
// point-to-point trunks, a roam/probe schedule per host, and per-shard
// metrics registries.
func buildScaleFleet(seed int64, n, workers int) (*scaleFleet, error) {
	return buildScaleFleetSilent(seed, n, workers, 0)
}

// buildScaleFleetSilent is buildScaleFleet with the last silentCampuses
// campus shards left without any mobile hosts. A silent campus keeps its
// full infrastructure (router, home agent, correspondent, trunk) but
// generates no events, so it exercises the barrier tree's skip path: the
// shard must sit out every epoch without perturbing the others.
func buildScaleFleetSilent(seed int64, n, workers, silentCampuses int) (*scaleFleet, error) {
	numFleet := scaleShardCount(n)
	if silentCampuses >= numFleet {
		return nil, fmt.Errorf("testbed: %d silent campuses leaves no shard to host the fleet (%d campus shards)", silentCampuses, numFleet)
	}
	numActive := numFleet - silentCampuses
	numShards := numFleet + 1
	hub := numFleet // the hub shard's index

	loops := make([]*sim.Loop, numShards)
	regs := make([]*metrics.Registry, numShards)
	for k := range loops {
		loops[k] = sim.New(sim.ShardSeed(seed+int64(n), k))
		regs[k] = metrics.Enable(loops[k])
	}

	trunk := link.Backbone()
	ss := sim.NewShardSet(loops, trunk.MinLatency())
	ss.SetWorkers(workers)
	ss.SetGroups(scaleBarrierGroups(numFleet))
	metrics.RegisterShardSet(ss, regs)

	addRouterIface := func(h *stack.Host, net *link.Network, addr ip.Addr, pfx ip.Prefix, opts stack.IfaceOpts) *stack.Iface {
		d := link.NewDevice(h.Loop(), "r-"+net.Name(), 0, 0)
		d.Attach(net)
		d.BringUp(nil)
		ifc := h.AddIface("r-"+net.Name(), d, addr, pfx, opts)
		h.ConnectRoute(ifc)
		return ifc
	}

	var cacheHosts []*stack.Host

	// Hub shard: backbone router plus the cross-shard correspondent.
	hubLoop := loops[hub]
	backboneNet := link.NewNetwork(hubLoop, "scale-backbone", link.Ethernet())
	hubRouter := stack.NewHost(hubLoop, "hub", stack.Config{
		InputDelay:   scaleFleetSpec.RouterDelays.Input.D(),
		OutputDelay:  scaleFleetSpec.RouterDelays.Output.D(),
		ForwardDelay: scaleFleetSpec.RouterDelays.Forward.D(),
	})
	addRouterIface(hubRouter, backboneNet, scaleHubAddr, scaleBackbonePfx, stack.IfaceOpts{})
	hubRouter.SetForwarding(true)
	cacheHosts = append(cacheHosts, hubRouter)

	probesSent := make([]uint64, numShards)
	probesEchoed := make([]uint64, numShards)

	bbCH := newEndHost(hubLoop, backboneNet, "bb-ch", scaleBackboneCH, scaleBackbonePfx, scaleHubAddr, scaleFleetSpec.HostDelay.D())
	var bbSrv *transport.UDPSocket
	bbSrv, err := bbCH.UDP(ip.Unspecified, 7, func(d transport.Datagram) {
		bbSrv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		return nil, err
	}
	cacheHosts = append(cacheHosts, bbCH.Host())

	fleet := make([]*scaleMH, 0, n)
	has := make([]*mip.HomeAgent, 0, numFleet)

	for k := 0; k < numFleet; k++ {
		k := k
		loop := loops[k]
		homePfx := scaleShardPrefix(k, 0)
		deptPfx := scaleShardPrefix(k, 1)
		campusPfx := scaleShardPrefix(k, 2)
		routerHome := scaleRouterAddr(k, 0)
		routerDept := scaleRouterAddr(k, 1)
		routerCampus := scaleRouterAddr(k, 2)
		chLocal := deptPfx.Addr
		chLocal[3] = 7

		homeNet := link.NewNetwork(loop, fmt.Sprintf("scale-home%d", k), link.Ethernet())
		deptNet := link.NewNetwork(loop, fmt.Sprintf("scale-dept%d", k), link.Ethernet())
		campusNet := link.NewNetwork(loop, fmt.Sprintf("scale-campus%d", k), link.Ethernet())

		// Shard router with the home agent collocated, as in the Figure 5
		// testbed.
		router := stack.NewHost(loop, fmt.Sprintf("router%d", k), stack.Config{
			InputDelay:   scaleFleetSpec.RouterDelays.Input.D(),
			OutputDelay:  scaleFleetSpec.RouterDelays.Output.D(),
			ForwardDelay: scaleFleetSpec.RouterDelays.Forward.D(),
		})
		homeIfc := addRouterIface(router, homeNet, routerHome, homePfx, stack.IfaceOpts{})
		addRouterIface(router, deptNet, routerDept, deptPfx, stack.IfaceOpts{})
		addRouterIface(router, campusNet, routerCampus, campusPfx, stack.IfaceOpts{})
		router.SetForwarding(true)
		cacheHosts = append(cacheHosts, router)
		ha, err := mip.NewHomeAgent(transport.NewStack(router), mip.HomeAgentConfig{
			HomeIface:       homeIfc,
			HomePrefix:      homePfx,
			ProcessingDelay: scaleFleetSpec.HAProcessing.D(),
		})
		if err != nil {
			return nil, err
		}
		has = append(has, ha)

		// Trunk to the hub: one single-device stub network per side, with
		// transmit handed off across the shard boundary at the barrier.
		trunkPfx := ip.Prefix{Addr: ip.Addr{10, 250, byte(k), 0}, Bits: 24}
		hubSide := ip.Addr{10, 250, byte(k), 1}
		shardSide := ip.Addr{10, 250, byte(k), 2}
		shardTrunkNet := link.NewNetwork(loop, fmt.Sprintf("scale-trunk%d-s", k), trunk)
		hubTrunkNet := link.NewNetwork(hubLoop, fmt.Sprintf("scale-trunk%d-h", k), trunk)
		shardTrunkNet.SetHandoff(func(f *link.Frame, at sim.Time) {
			ss.Post(k, hub, at, func() { hubTrunkNet.DeliverLocal(f) })
		})
		hubTrunkNet.SetHandoff(func(f *link.Frame, at sim.Time) {
			ss.Post(hub, k, at, func() { shardTrunkNet.DeliverLocal(f) })
		})
		trunkIfc := addRouterIface(router, shardTrunkNet, shardSide, trunkPfx, stack.IfaceOpts{PointToPoint: true})
		hubIfc := addRouterIface(hubRouter, hubTrunkNet, hubSide, trunkPfx, stack.IfaceOpts{PointToPoint: true})
		router.AddDefaultRoute(hubSide, trunkIfc)
		for _, pfx := range []ip.Prefix{homePfx, deptPfx, campusPfx} {
			hubRouter.Routes().Add(stack.Route{Dst: pfx, Gateway: shardSide, Iface: hubIfc})
		}

		// Local correspondent: a UDP echo service on the department subnet.
		ch := newEndHost(loop, deptNet, fmt.Sprintf("ch%d", k), chLocal, deptPfx, routerDept, scaleFleetSpec.HostDelay.D())
		var echoSrv *transport.UDPSocket
		echoSrv, err = ch.UDP(ip.Unspecified, 7, func(d transport.Datagram) {
			echoSrv.SendTo(d.From, d.FromPort, d.Payload)
		})
		if err != nil {
			return nil, err
		}
		cacheHosts = append(cacheHosts, ch.Host())

		// This shard's slice of the fleet, contiguous in global host index.
		// Silent campuses (k >= numActive) take an empty slice.
		lo, hi := 0, 0
		if k < numActive {
			lo, hi = k*n/numActive, (k+1)*n/numActive
		}
		for i := lo; i < hi; i++ {
			j := i - lo
			h := stack.NewHost(loop, fmt.Sprintf("mh%04d", i), stack.Config{
				InputDelay:  scaleFleetSpec.MobileDelay.D(),
				OutputDelay: scaleFleetSpec.MobileDelay.D(),
			})
			ts := transport.NewStack(h)
			m := mip.NewMobileHost(ts, mip.MobileHostConfig{
				HomeAddr:   scaleAddr(homePfx, j),
				HomePrefix: homePfx,
				HomeAgent:  routerHome,
				Lifetime:   scaleFleetSpec.RegLifetime.D(),
			})
			sm := &scaleMH{m: m}
			for d, net := range []*link.Network{deptNet, campusNet} {
				dev := link.NewDevice(loop, fmt.Sprintf("eth%d", d), 0, 0)
				dev.Attach(net)
				pfx, gw := deptPfx, routerDept
				if d == 1 {
					pfx, gw = campusPfx, routerCampus
				}
				mi, err := m.AddInterface(fmt.Sprintf("eth%d", d), dev, false, &mip.StaticConfig{
					Addr:    scaleAddr(pfx, j),
					Prefix:  pfx,
					Gateway: gw,
				})
				if err != nil {
					return nil, err
				}
				sm.mis[d] = mi
			}
			sock, err := ts.UDP(ip.Unspecified, 0, func(transport.Datagram) { probesEchoed[k]++ })
			if err != nil {
				return nil, err
			}
			sm.sock = sock
			fleet = append(fleet, sm)
			cacheHosts = append(cacheHosts, h)

			// Roam: each host attaches to the department net, then
			// alternates between the two foreign subnets on a fixed
			// cadence. Starts are staggered so registrations are a
			// stream, not a lockstep burst. Timers are self-chaining —
			// each firing schedules the next — so a resident fleet
			// holds one pending roam and one pending probe event per
			// host instead of the whole 8-second schedule; at 100k
			// hosts that is the difference between a few hundred
			// thousand queued events and several million.
			stagger := time.Duration(i) * scaleStagger
			roamR := 0
			var roam func()
			roam = func() {
				sm.m.ConnectForeign(sm.mis[roamR%2], nil)
				roamR++
				if time.Duration(roamR)*scaleSwitchPeriod < scaleDuration {
					loop.Schedule(scaleSwitchPeriod, roam)
				}
			}
			loop.Schedule(stagger, roam)
			// Probes: mostly to the shard-local correspondent; every
			// scaleCrossEvery-th crosses the backbone trunk to the hub's.
			probeP := 0
			var probe func()
			probe = func() {
				dst := chLocal
				if probeP%scaleCrossEvery == scaleCrossEvery-1 {
					dst = scaleBackboneCH
				}
				probesSent[k]++
				sm.sock.SendTo(dst, 7, []byte("scale-probe"))
				probeP++
				if scaleProbeStart+time.Duration(probeP)*scaleProbeInterval < scaleDuration {
					loop.Schedule(scaleProbeInterval, probe)
				}
			}
			loop.Schedule(stagger+scaleProbeStart, probe)
		}
	}

	return &scaleFleet{
		n:            n,
		numShards:    numShards,
		loops:        loops,
		regs:         regs,
		ss:           ss,
		probesSent:   probesSent,
		probesEchoed: probesEchoed,
		fleet:        fleet,
		has:          has,
		cacheHosts:   cacheHosts,
	}, nil
}

// row collects the fleet's deterministic outcome after the run.
func (f *scaleFleet) row() ScaleRow {
	row := ScaleRow{
		Hosts:            f.n,
		Shards:           f.numShards,
		Events:           f.ss.Executed(),
		VirtualSeconds:   scaleDuration.Seconds(),
		EventsPerVirtSec: float64(f.ss.Executed()) / scaleDuration.Seconds(),
		QueueHighWater:   f.ss.QueueHighWater(),
		Epochs:           f.ss.Epochs(),
		CrossFrames:      f.ss.CrossDelivered(),
	}
	for k := 0; k < f.numShards; k++ {
		row.ProbesSent += f.probesSent[k]
		row.ProbesEchoed += f.probesEchoed[k]
	}
	for _, sm := range f.fleet {
		row.Registrations += sm.m.Stats().Registrations
		row.Encapsulated += sm.m.Tunnel().Stats().Encapsulated
	}
	for _, ha := range f.has {
		row.Encapsulated += ha.Tunnel().Stats().Encapsulated
	}
	for _, h := range f.cacheHosts {
		st := h.RouteCacheStats()
		row.RouteCacheHits += st.Hits
		row.RouteCacheMisses += st.Misses
		row.RouteCacheInvalidations += st.Invalidations
	}
	if total := row.RouteCacheHits + row.RouteCacheMisses; total > 0 {
		row.RouteCacheHitRate = float64(row.RouteCacheHits) / float64(total)
	}
	return row
}

// snapshot merges the per-shard registries into the compact export
// snapshot: loop-level aggregates (sim.loop.*) plus the per-shard barrier
// counters (sim.shard.*). The name filter runs before rows materialize
// (MergedSnapshotFiltered), so a 100k-host fleet never builds the
// hundreds of thousands of per-host rows it is about to throw away.
func (f *scaleFleet) snapshot() *metrics.Snapshot {
	snap := metrics.MergedSnapshotFiltered(f.ss.Now(), func(name string) bool {
		return strings.HasPrefix(name, "sim.")
	}, f.regs...)
	snap.Name = fmt.Sprintf("scale-%dhosts", f.n)
	return snap
}
