package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/transport"
)

// The scale experiment measures the simulator itself rather than the
// paper's protocol: N mobile hosts roam concurrently between two foreign
// subnets while exchanging UDP echo traffic with a correspondent through
// the home agent. It is the regime where per-event and per-packet
// allocation costs dominate, so it doubles as the fleet-scale performance
// baseline: BenchmarkScaleRoaming drives the same harness and reports
// wall-clock ns/op, B/op, and allocs/op on top of the deterministic
// virtual-time quantities recorded here.
//
// Telemetry configuration is deliberately asymmetric with the Figure 5
// testbed: the metrics registry is enabled (the export needs counters) but
// the packet-lifecycle log is NOT. A fleet-scale perf run cannot afford
// per-hop trace records, and running without a packet log also exercises
// every layer's disabled-telemetry path.

// Scale experiment shape. Kept modest so one fleet fits a CI smoke run;
// the event count still reaches the millions at 1000 hosts because every
// frame on a shared Ethernet segment fans out to all attached devices.
const (
	scaleDuration      = 8 * time.Second         // virtual runtime per fleet
	scaleSwitchPeriod  = 2500 * time.Millisecond // roam cadence per host
	scaleProbeInterval = time.Second             // echo probe cadence per host
	scaleProbeStart    = 500 * time.Millisecond
)

// ScaleRow is one fleet size's deterministic outcome. Every field derives
// from virtual time and seeded randomness only, so BENCH_scale.json is
// byte-identical across runs with the same seed.
type ScaleRow struct {
	Hosts            int     `json:"hosts"`
	Events           uint64  `json:"events"`
	VirtualSeconds   float64 `json:"virtual_seconds"`
	EventsPerVirtSec float64 `json:"events_per_virtual_second"`
	QueueHighWater   int     `json:"queue_high_water"`
	Registrations    uint64  `json:"registrations"`
	ProbesSent       uint64  `json:"probes_sent"`
	ProbesEchoed     uint64  `json:"probes_echoed"`
	Encapsulated     uint64  `json:"encapsulated"`
}

// ScaleResult is the full scale experiment: one row per fleet size.
type ScaleResult struct {
	Rows   []ScaleRow
	Export *Export
}

func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: concurrent roaming fleets (%v virtual per fleet)\n", scaleDuration)
	fmt.Fprintf(&b, "  %6s  %10s  %12s  %8s  %6s  %7s  %7s\n",
		"hosts", "events", "ev/virt-sec", "queue-hw", "regs", "probes", "echoed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %6d  %10d  %12.0f  %8d  %6d  %7d  %7d\n",
			row.Hosts, row.Events, row.EventsPerVirtSec, row.QueueHighWater,
			row.Registrations, row.ProbesSent, row.ProbesEchoed)
	}
	return b.String()
}

// RunScale runs the roaming-fleet scale experiment for each fleet size.
func RunScale(seed int64, fleets []int) (*ScaleResult, error) {
	res := &ScaleResult{Export: &Export{Experiment: "scale", Seed: seed}}
	for _, n := range fleets {
		row, snap, err := RunScaleFleet(seed, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		res.Export.Snapshots = append(res.Export.Snapshots, snap)
	}
	res.Export.Rows = res.Rows
	return res, nil
}

// scaleAddr spreads host i across the low octets of a /16, skipping the
// .0 host octet range where the infrastructure (router, correspondent)
// lives.
func scaleAddr(pfx ip.Prefix, i int) ip.Addr {
	return ip.Addr{pfx.Addr[0], pfx.Addr[1], byte(1 + i/200), byte(1 + i%200)}
}

// RunScaleFleet runs one fleet of n roaming mobile hosts and returns its
// deterministic row plus a compact metrics snapshot (loop-level metrics
// only; a full per-host snapshot at 1000 hosts would dwarf the export).
func RunScaleFleet(seed int64, n int) (ScaleRow, *metrics.Snapshot, error) {
	loop := sim.New(seed + int64(n))
	reg := metrics.Enable(loop)
	defer metrics.Release(loop)

	homeNet := link.NewNetwork(loop, "scale-home", link.Ethernet())
	deptNet := link.NewNetwork(loop, "scale-dept", link.Ethernet())
	campusNet := link.NewNetwork(loop, "scale-campus", link.Ethernet())

	// Router with the home agent collocated, as in the Figure 5 testbed.
	router := stack.NewHost(loop, "router", stack.Config{
		InputDelay:   HAInputDelay,
		OutputDelay:  HAOutputDelay,
		ForwardDelay: RouterForwardDelay,
	})
	addRouterIface := func(net *link.Network, addr ip.Addr, pfx ip.Prefix) *stack.Iface {
		d := link.NewDevice(loop, "r-"+net.Name(), 0, 0)
		d.Attach(net)
		d.BringUp(nil)
		ifc := router.AddIface("r-"+net.Name(), d, addr, pfx, stack.IfaceOpts{})
		router.ConnectRoute(ifc)
		return ifc
	}
	homeIfc := addRouterIface(homeNet, RouterHomeAddr, HomePrefix)
	addRouterIface(deptNet, RouterDeptAddr, DeptPrefix)
	addRouterIface(campusNet, RouterCampusAddr, CampusPrefix)
	router.SetForwarding(true)
	routerTS := transport.NewStack(router)
	ha, err := mip.NewHomeAgent(routerTS, mip.HomeAgentConfig{
		HomeIface:       homeIfc,
		HomePrefix:      HomePrefix,
		ProcessingDelay: HAProcessing,
	})
	if err != nil {
		return ScaleRow{}, nil, err
	}

	// Correspondent host: a UDP echo service on the department subnet.
	ch := newEndHost(loop, deptNet, "ch", CHAddr, DeptPrefix, RouterDeptAddr)
	var echoSrv *transport.UDPSocket
	echoSrv, err = ch.UDP(ip.Unspecified, 7, func(d transport.Datagram) {
		echoSrv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		return ScaleRow{}, nil, err
	}

	var probesSent, probesEchoed uint64
	type scaleMH struct {
		m    *mip.MobileHost
		mis  [2]*mip.ManagedIface
		sock *transport.UDPSocket
	}
	fleet := make([]*scaleMH, 0, n)
	for i := 0; i < n; i++ {
		h := stack.NewHost(loop, fmt.Sprintf("mh%04d", i), stack.Config{
			InputDelay:  MHProcDelay,
			OutputDelay: MHProcDelay,
		})
		ts := transport.NewStack(h)
		m := mip.NewMobileHost(ts, mip.MobileHostConfig{
			HomeAddr:   scaleAddr(HomePrefix, i),
			HomePrefix: HomePrefix,
			HomeAgent:  RouterHomeAddr,
			Lifetime:   RegLifetime,
		})
		sm := &scaleMH{m: m}
		for k, net := range []*link.Network{deptNet, campusNet} {
			d := link.NewDevice(loop, fmt.Sprintf("eth%d", k), 0, 0)
			d.Attach(net)
			pfx, gw := DeptPrefix, RouterDeptAddr
			if k == 1 {
				pfx, gw = CampusPrefix, RouterCampusAddr
			}
			mi, err := m.AddInterface(fmt.Sprintf("eth%d", k), d, false, &mip.StaticConfig{
				Addr:    scaleAddr(pfx, i),
				Prefix:  pfx,
				Gateway: gw,
			})
			if err != nil {
				return ScaleRow{}, nil, err
			}
			sm.mis[k] = mi
		}
		sock, err := ts.UDP(ip.Unspecified, 0, func(transport.Datagram) { probesEchoed++ })
		if err != nil {
			return ScaleRow{}, nil, err
		}
		sm.sock = sock
		fleet = append(fleet, sm)
	}

	// Roam: each host attaches to the department net, then alternates
	// between the two foreign subnets on a fixed cadence. Starts are
	// staggered so registrations are a stream, not a lockstep burst.
	for i, sm := range fleet {
		sm := sm
		stagger := time.Duration(i) * 300 * time.Microsecond
		for k := 0; time.Duration(k)*scaleSwitchPeriod < scaleDuration; k++ {
			which := k % 2
			loop.Schedule(stagger+time.Duration(k)*scaleSwitchPeriod, func() {
				sm.m.ConnectForeign(sm.mis[which], nil)
			})
		}
		for k := 0; scaleProbeStart+time.Duration(k)*scaleProbeInterval < scaleDuration; k++ {
			loop.Schedule(stagger+scaleProbeStart+time.Duration(k)*scaleProbeInterval, func() {
				probesSent++
				sm.sock.SendTo(CHAddr, 7, []byte("scale-probe"))
			})
		}
	}

	loop.RunFor(scaleDuration)

	row := ScaleRow{
		Hosts:            n,
		Events:           loop.Executed(),
		VirtualSeconds:   scaleDuration.Seconds(),
		EventsPerVirtSec: float64(loop.Executed()) / scaleDuration.Seconds(),
		QueueHighWater:   loop.QueueHighWater(),
		ProbesSent:       probesSent,
		ProbesEchoed:     probesEchoed,
	}
	for _, sm := range fleet {
		row.Registrations += sm.m.Stats().Registrations
	}
	row.Encapsulated = ha.Tunnel().Stats().Encapsulated

	snap := filterSnapshot(reg.Snapshot(), "sim.loop.")
	snap.Name = fmt.Sprintf("scale-%dhosts", n)
	return row, snap, nil
}

// filterSnapshot keeps only metrics whose name begins with prefix — the
// loop-level aggregates — so fleet exports stay reviewably small.
func filterSnapshot(s *metrics.Snapshot, prefix string) *metrics.Snapshot {
	out := &metrics.Snapshot{At: s.At, AtHuman: s.AtHuman}
	for _, m := range s.Metrics {
		if strings.HasPrefix(m.Name, prefix) {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}
