package testbed

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestScaleShardCount pins the fleet-size → shard-count mapping: shard
// assignment is part of the deterministic output contract, so changing
// these thresholds is a results-affecting change.
func TestScaleShardCount(t *testing.T) {
	cases := map[int]int{1: 1, 10: 1, 15: 1, 16: 2, 63: 2, 64: 4, 255: 4, 256: 8, 1000: 8}
	for n, want := range cases {
		if got := scaleShardCount(n); got != want {
			t.Errorf("scaleShardCount(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestScaleWorkersByteIdentical is the engine's core guarantee on the real
// workload: the worker-pool size changes which goroutine executes a shard,
// never the results. Rows and metrics snapshots must match byte-for-byte.
func TestScaleWorkersByteIdentical(t *testing.T) {
	const n = 100
	baseRow, baseSnap, err := RunScaleFleetWorkers(1996, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if baseRow.ProbesEchoed == 0 || baseRow.CrossFrames == 0 {
		t.Fatalf("workload did not exercise cross-shard traffic: %+v", baseRow)
	}
	baseJSON, _ := json.Marshal(baseRow)
	var baseSnapJSON bytes.Buffer
	if err := baseSnap.WriteJSON(&baseSnapJSON); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		row, snap, err := RunScaleFleetWorkers(1996, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		rowJSON, _ := json.Marshal(row)
		if !bytes.Equal(baseJSON, rowJSON) {
			t.Errorf("workers=%d row differs from workers=1:\n  %s\n  %s", workers, baseJSON, rowJSON)
		}
		var snapJSON bytes.Buffer
		if err := snap.WriteJSON(&snapJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseSnapJSON.Bytes(), snapJSON.Bytes()) {
			t.Errorf("workers=%d metrics snapshot differs from workers=1", workers)
		}
	}
}

// TestScaleRouteCacheHitRate is the acceptance gate for the route-decision
// cache: on the roaming scale workload the cache must serve at least 90%
// of lookups, while still being invalidated by every roam (a suspiciously
// invalidation-free run would mean the cache can serve stale decisions).
func TestScaleRouteCacheHitRate(t *testing.T) {
	row, _, err := RunScaleFleetWorkers(1996, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.RouteCacheHits == 0 || row.RouteCacheMisses == 0 {
		t.Fatalf("cache counters implausible: %+v", row)
	}
	if row.RouteCacheInvalidations == 0 {
		t.Fatal("roaming workload never invalidated the route cache")
	}
	if row.RouteCacheHitRate < 0.90 {
		t.Fatalf("route cache hit rate %.3f < 0.90 (hits %d, misses %d)",
			row.RouteCacheHitRate, row.RouteCacheHits, row.RouteCacheMisses)
	}
	if row.ProbesEchoed == 0 {
		t.Fatal("no probes echoed — hit rate meaningless on a dead workload")
	}
}
