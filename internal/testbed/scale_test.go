package testbed

import (
	"bytes"
	"encoding/json"
	"testing"

	"mosquitonet/internal/sim"
)

// TestScaleShardCount pins the fleet-size → shard-count mapping: shard
// assignment is part of the deterministic output contract, so changing
// these thresholds is a results-affecting change.
func TestScaleShardCount(t *testing.T) {
	cases := map[int]int{
		1: 1, 10: 1, 15: 1, 16: 2, 63: 2, 64: 4, 255: 4, 256: 8, 1000: 8,
		1023: 8, 1024: 16, 10000: 16, 16383: 16, 16384: 32, 65535: 32,
		65536: 64, 100000: 64,
	}
	for n, want := range cases {
		if got := scaleShardCount(n); got != want {
			t.Errorf("scaleShardCount(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestScaleWorkersByteIdentical is the engine's core guarantee on the real
// workload: the worker-pool size changes which goroutine executes a shard,
// never the results. Rows and metrics snapshots must match byte-for-byte.
func TestScaleWorkersByteIdentical(t *testing.T) {
	const n = 100
	baseRow, baseSnap, err := RunScaleFleetWorkers(1996, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if baseRow.ProbesEchoed == 0 || baseRow.CrossFrames == 0 {
		t.Fatalf("workload did not exercise cross-shard traffic: %+v", baseRow)
	}
	baseJSON, _ := json.Marshal(baseRow)
	var baseSnapJSON bytes.Buffer
	if err := baseSnap.WriteJSON(&baseSnapJSON); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		row, snap, err := RunScaleFleetWorkers(1996, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		rowJSON, _ := json.Marshal(row)
		if !bytes.Equal(baseJSON, rowJSON) {
			t.Errorf("workers=%d row differs from workers=1:\n  %s\n  %s", workers, baseJSON, rowJSON)
		}
		var snapJSON bytes.Buffer
		if err := snap.WriteJSON(&snapJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseSnapJSON.Bytes(), snapJSON.Bytes()) {
			t.Errorf("workers=%d metrics snapshot differs from workers=1", workers)
		}
	}
}

// runSilentCampusFleet runs a 64-host fleet whose last campus shard has
// infrastructure but no mobile hosts, and returns the deterministic
// outputs plus the shard set's barrier stats (read before release).
func runSilentCampusFleet(t *testing.T, workers int) (ScaleRow, []byte, []sim.ShardStats, uint64) {
	t.Helper()
	fl, err := buildScaleFleetSilent(1996, 64, workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.release()
	fl.ss.RunFor(scaleDuration)
	row := fl.row()
	var snapJSON bytes.Buffer
	if err := fl.snapshot().WriteJSON(&snapJSON); err != nil {
		t.Fatal(err)
	}
	stats := make([]sim.ShardStats, fl.numShards)
	for k := range stats {
		stats[k] = fl.ss.ShardStats(k)
	}
	return row, snapJSON.Bytes(), stats, fl.ss.Epochs()
}

// TestScaleSilentCampus pins the barrier tree's skip path on the real
// topology: a campus shard with no mobile hosts must never participate in
// a barrier — zero waits, zero dispatched events, every epoch skipped —
// and its presence must not disturb byte-identical execution across
// worker counts.
func TestScaleSilentCampus(t *testing.T) {
	baseRow, baseSnap, baseStats, epochs := runSilentCampusFleet(t, 1)
	if baseRow.ProbesEchoed == 0 || baseRow.CrossFrames == 0 {
		t.Fatalf("workload did not exercise cross-shard traffic: %+v", baseRow)
	}

	// The silent campus is the last campus shard (index numFleet-1 = 2 at
	// 64 hosts: shards 0..3 campuses, 4 hub — silent one is index 3).
	silent := scaleShardCount(64) - 1
	st := baseStats[silent]
	if st.BarrierWaits != 0 || st.EventsDispatched != 0 {
		t.Errorf("silent campus shard %d participated: %+v", silent, st)
	}
	if st.EpochsSkipped != epochs {
		t.Errorf("silent campus skipped %d of %d epochs", st.EpochsSkipped, epochs)
	}
	// The active shards must have carried the whole fleet.
	for k := 0; k < silent; k++ {
		if baseStats[k].EventsDispatched == 0 {
			t.Errorf("active shard %d dispatched no events", k)
		}
	}

	for _, workers := range []int{4, 8} {
		row, snap, stats, _ := runSilentCampusFleet(t, workers)
		if row != baseRow {
			t.Errorf("workers=%d row differs from workers=1:\n  %+v\n  %+v", workers, baseRow, row)
		}
		if !bytes.Equal(baseSnap, snap) {
			t.Errorf("workers=%d metrics snapshot differs from workers=1", workers)
		}
		for k := range stats {
			if stats[k] != baseStats[k] {
				t.Errorf("workers=%d shard %d stats %+v, workers=1 %+v", workers, k, stats[k], baseStats[k])
			}
		}
	}
}

// TestCrossWorkerDeterminism drives the parallel experiment end to end:
// every (fleet, workers) row must report identical outputs, and the
// determinism check inside RunParallel must not trip. It also pins the
// provenance fields the BENCH_parallel.json contract promises.
func TestCrossWorkerDeterminism(t *testing.T) {
	res, err := RunParallel(7, []int{64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if !row.Identical {
			t.Errorf("workers=%d row not identical: %+v", row.Workers, row)
		}
		if row.NumCPU < 1 || row.GoMaxProcs < 1 {
			t.Errorf("provenance fields missing: %+v", row)
		}
		if len(row.WorkerUtilization) == 0 {
			t.Errorf("workers=%d row has no utilization readings", row.Workers)
		}
	}
}

// TestScaleRouteCacheHitRate is the acceptance gate for the route-decision
// cache: on the roaming scale workload the cache must serve at least 90%
// of lookups, while still being invalidated by every roam (a suspiciously
// invalidation-free run would mean the cache can serve stale decisions).
func TestScaleRouteCacheHitRate(t *testing.T) {
	row, _, err := RunScaleFleetWorkers(1996, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.RouteCacheHits == 0 || row.RouteCacheMisses == 0 {
		t.Fatalf("cache counters implausible: %+v", row)
	}
	if row.RouteCacheInvalidations == 0 {
		t.Fatal("roaming workload never invalidated the route cache")
	}
	if row.RouteCacheHitRate < 0.90 {
		t.Fatalf("route cache hit rate %.3f < 0.90 (hits %d, misses %d)",
			row.RouteCacheHitRate, row.RouteCacheHits, row.RouteCacheMisses)
	}
	if row.ProbesEchoed == 0 {
		t.Fatal("no probes echoed — hit rate meaningless on a dead workload")
	}
}
