package testbed

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The scenario compiler must be a pure refactor of the hand-written
// experiment builders: the exports of the spec-driven handoff,
// loadedhandoff, and scale drivers are pinned byte-for-byte against
// goldens captured immediately before the refactor (same seed, workers 1
// and 4 for the sharded experiment).

func goldenBytes(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "prerefactor", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func checkGolden(t *testing.T, name string, write func(io.Writer) error) {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), goldenBytes(t, name)) {
		t.Errorf("%s diverged from the pre-refactor golden (%d bytes vs %d)", name, buf.Len(), len(goldenBytes(t, name)))
	}
}

func TestScenarioCompileEquivalence(t *testing.T) {
	t.Run("handoff", func(t *testing.T) {
		res, err := RunHandoff(1996)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "BENCH_handoff.json", res.Export.WriteJSON)
		checkGolden(t, "BENCH_handoff_spans.jsonl", res.Tracer.WriteSpansJSONL)
		checkGolden(t, "BENCH_handoff_trace.json", res.Tracer.WriteChromeTrace)
	})
	t.Run("loadedhandoff", func(t *testing.T) {
		res, err := RunLoadedHandoff(1996)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "BENCH_loadedhandoff.json", res.Export.WriteJSON)
	})
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "scale-workers1", 4: "scale-workers4"}[workers], func(t *testing.T) {
			res, err := RunScaleWorkers(1996, []int{10, 100}, workers)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "BENCH_scale.json", res.Export.WriteJSON)
		})
	}
}

// Two same-(seed, n) sweeps must generate identical variants and produce
// identical exports.
func TestSweepDeterminism(t *testing.T) {
	run := func() []byte {
		res, err := RunSweep(1996, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("sweep exports diverged between same-seed runs")
	}
	if len(a) == 0 {
		t.Error("sweep produced no rows")
	}
}

// The address variables experiment code uses must stay pinned to the
// figure5 spec they mirror.
func TestFigure5SpecMatches(t *testing.T) {
	spec := MustScenario("figure5")
	top := &spec.Topology
	wantPrefix := map[string]string{
		"home": HomePrefix.String(), "dept": DeptPrefix.String(),
		"radio": RadioPrefix.String(), "campus": CampusPrefix.String(), "slow": SlowPrefix.String(),
	}
	for i := range top.Subnets {
		s := &top.Subnets[i]
		if want, ok := wantPrefix[s.Name]; ok && s.Prefix != want {
			t.Errorf("subnet %s prefix = %s, want %s", s.Name, s.Prefix, want)
		}
	}
	if top.Mobiles[0].HomeAddr != MHHomeAddr.String() {
		t.Errorf("mobile home addr = %s, want %s", top.Mobiles[0].HomeAddr, MHHomeAddr)
	}
	if top.Mobiles[0].HomeAgent != RouterHomeAddr.String() {
		t.Errorf("mobile home agent = %s, want %s", top.Mobiles[0].HomeAgent, RouterHomeAddr)
	}
	var chFound bool
	for i := range top.Hosts {
		if top.Hosts[i].Name == "ch" {
			chFound = true
			if top.Hosts[i].Addr != CHAddr.String() {
				t.Errorf("ch addr = %s, want %s", top.Hosts[i].Addr, CHAddr)
			}
		}
	}
	if !chFound {
		t.Error("figure5 spec has no correspondent host \"ch\"")
	}
}
