package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/stats"
)

// The generic scenario runner: any catalog or generated spec that
// declares an itinerary and UDP probes becomes an experiment. The first
// itinerary step attaches the mobile host, the probes start, the
// remaining steps (and any scheduled faults) play out, and every root
// handoff and fault.* span becomes an attribution window scored against
// every probe flow. RunSweep and the fault-injection scenarios
// (faultdemo) drive their runs through here.

// ScenarioProbeRow is one probe flow's accounting across a scenario run.
type ScenarioProbeRow struct {
	Flow            string `json:"flow"`
	ProbeIntervalNS int64  `json:"probe_interval_ns"`

	PacketsSent     int `json:"packets_sent"`
	PacketsReceived int `json:"packets_received"`
	PacketsLost     int `json:"packets_lost"`
	Reorders        int `json:"reorders"`

	BaselineLatencyNS int64 `json:"baseline_latency_ns"`

	// Windows holds one disruption report per handoff or fault window, in
	// window start order.
	Windows []stats.DisruptionReport `json:"windows"`
}

// ScenarioRows is the machine-readable outcome of one scenario run.
type ScenarioRows struct {
	Scenario string                 `json:"scenario"`
	GraceNS  int64                  `json:"grace_ns"`
	Faults   []scenario.FaultRecord `json:"faults"`
	Flows    []ScenarioProbeRow     `json:"flows"`
}

// ScenarioResult is one compiled-and-run scenario. World stays readable
// after the run for state inspection (bindings, stats, routes); the
// loop has stopped by the time RunScenarioProbe returns.
type ScenarioResult struct {
	Rows    ScenarioRows
	Testbed *Testbed
	Probes  []*FlowProbe
	Export  *Export
}

func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO %s: %d probe flow(s), %d fault(s), %v grace\n",
		r.Rows.Scenario, len(r.Rows.Flows), len(r.Rows.Faults), time.Duration(r.Rows.GraceNS))
	for _, f := range r.Rows.Faults {
		fmt.Fprintf(&b, "  fault %-18s %-14s [%v, %v]\n", f.Kind, f.Target,
			time.Duration(f.Start).Round(time.Millisecond), time.Duration(f.End).Round(time.Millisecond))
	}
	for _, f := range r.Rows.Flows {
		fmt.Fprintf(&b, "flow %s: %d sent, %d received, %d lost, %d reordered\n",
			f.Flow, f.PacketsSent, f.PacketsReceived, f.PacketsLost, f.Reorders)
		b.WriteString(stats.FormatDisruption(f.Windows))
	}
	return b.String()
}

// RunScenarioProbe compiles spec, walks its itinerary under its UDP
// probes, and scores every handoff and fault window against every flow.
// The spec must declare a non-empty itinerary whose first step attaches
// the mobile host; probes are optional (a probe-less run still reports
// its fault records).
func RunScenarioProbe(seed int64, spec *scenario.Spec) (*ScenarioResult, error) {
	if len(spec.Itinerary) == 0 {
		return nil, fmt.Errorf("scenario %s: no itinerary to run", spec.Name)
	}
	tb, err := NewFromSpec(seed, spec)
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	if err := tb.World.Step(spec.Itinerary[0]); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	var probes []*FlowProbe
	if spec.Traffic != nil {
		for i := range spec.Traffic.Probes {
			p := &spec.Traffic.Probes[i]
			probe, err := NewFlowProbe(tb.Loop, tb.World.Stacks[p.From], tb.World.Stacks[p.To],
				ip.MustParseAddr(p.Dst), uint16(p.Port), p.Interval.D())
			if err != nil {
				return nil, fmt.Errorf("scenario %s: probe %s->%s: %w", spec.Name, p.From, p.To, err)
			}
			probes = append(probes, probe)
			probe.Start()
		}
	}

	if err := tb.World.RunItinerary(spec.Itinerary[1:]); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	for _, probe := range probes {
		probe.Pause()
	}
	if spec.Traffic != nil && spec.Traffic.Drain.D() > 0 {
		tb.Run(spec.Traffic.Drain.D())
	}

	windows := observationWindows(tb.Tracer)

	res := &ScenarioResult{
		Rows: ScenarioRows{
			Scenario: spec.Name,
			GraceNS:  int64(HandoffGrace),
			Faults:   tb.World.Faults.Records(),
		},
		Testbed: tb,
		Probes:  probes,
	}
	for i, probe := range probes {
		flow := probe.Flow()
		sent, received, lost, reorders := flow.Totals()
		res.Rows.Flows = append(res.Rows.Flows, ScenarioProbeRow{
			Flow:              flow.Name(),
			ProbeIntervalNS:   int64(spec.Traffic.Probes[i].Interval.D()),
			PacketsSent:       sent,
			PacketsReceived:   received,
			PacketsLost:       lost,
			Reorders:          reorders,
			BaselineLatencyNS: int64(flow.Baseline()),
			Windows:           flow.Analyze(windows, HandoffGrace),
		})
	}
	res.Export = &Export{
		Experiment: "scenario",
		Seed:       seed,
		Snapshots:  []*metrics.Snapshot{tb.SnapshotMetrics(spec.Name)},
		Rows:       res.Rows,
	}
	return res, nil
}
