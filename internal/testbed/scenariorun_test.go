package testbed

import (
	"encoding/json"
	"testing"
)

// The faultdemo scenario schedules a home-agent crash, a loss burst, and
// a link flap against the roaming probe. The crash must cost the flow
// real packets (the binding is gone, tunnelled traffic black-holes until
// the 8s-lifetime renewal re-registers), every fault must heal within
// the run, and the flow tracker must attribute the damage to the fault
// windows the injector leaves behind.
func TestFaultInjectionScoring(t *testing.T) {
	res, err := RunScenarioProbe(1996, MustScenario("faultdemo"))
	if err != nil {
		t.Fatal(err)
	}

	wantKinds := []string{"fault.ha.crash", "fault.loss.burst", "fault.link.flap"}
	if len(res.Rows.Faults) != len(wantKinds) {
		t.Fatalf("fault records = %d, want %d: %+v", len(res.Rows.Faults), len(wantKinds), res.Rows.Faults)
	}
	for i, rec := range res.Rows.Faults {
		if rec.Kind != wantKinds[i] {
			t.Errorf("fault %d kind = %s, want %s", i, rec.Kind, wantKinds[i])
		}
		if rec.End <= rec.Start {
			t.Errorf("fault %s never healed: %+v", rec.Kind, rec)
		}
	}

	if len(res.Rows.Flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(res.Rows.Flows))
	}
	flow := res.Rows.Flows[0]
	if flow.PacketsSent == 0 {
		t.Fatal("probe never sent")
	}

	// Each scored window carries its span kind; the scenario's single
	// handoff (cold-switch to the department) plus the three faults must
	// all appear.
	seen := map[string]int{}
	byKind := map[string]int{}
	for i, w := range flow.Windows {
		seen[w.Kind]++
		byKind[w.Kind] = i
	}
	for _, k := range append([]string{"handoff.home", "handoff.cold"}, wantKinds...) {
		if seen[k] == 0 {
			t.Errorf("no attribution window for %s (have %v)", k, seen)
		}
	}

	// The crash window is the expensive one: the home agent drops its
	// bindings and every tunnelled probe packet until the renewal
	// re-registers, so the flow must show both loss and a blackout there.
	crash := flow.Windows[byKind["fault.ha.crash"]]
	if crash.PacketsLost == 0 {
		t.Errorf("ha-crash window lost no packets: %+v", crash)
	}
	if crash.BlackoutNS <= 0 {
		t.Errorf("ha-crash window has no blackout: %+v", crash)
	}

	// The injector really crashed the agent once, and the renewal
	// restored the binding before the run ended.
	ha := res.Testbed.HA
	if got := ha.Stats().Crashes; got != 1 {
		t.Errorf("HA crashes = %d, want 1", got)
	}
	if ha.Stats().DropWhileDown == 0 {
		t.Error("HA dropped nothing while down")
	}
	if _, ok := ha.Binding(MHHomeAddr); !ok {
		t.Error("binding not re-registered after crash")
	}
}

// Same-seed runs of a fault scenario must export identical bytes.
func TestFaultScenarioDeterminism(t *testing.T) {
	run := func() []byte {
		res, err := RunScenarioProbe(7, MustScenario("faultdemo"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(run()) != string(run()) {
		t.Error("faultdemo export diverged between same-seed runs")
	}
}
