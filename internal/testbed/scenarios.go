package testbed

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"mosquitonet/internal/scenario"
)

// The scenario catalog: every experiment topology and itinerary this
// package drives lives as a declarative spec under testdata/scenarios/,
// embedded into the binary so experiment drivers, the mnet narrator, and
// the sweep generator all compile the same specs the repository pins.
//
//go:embed testdata/scenarios/*.json
var scenarioFS embed.FS

// loadScenarios parses every embedded spec and indexes it by its name
// field (not its filename). Each call re-parses, so callers own their
// specs and may mutate them freely.
func loadScenarios() (map[string]*scenario.Spec, error) {
	entries, err := scenarioFS.ReadDir("testdata/scenarios")
	if err != nil {
		return nil, fmt.Errorf("testbed: scenario catalog: %w", err)
	}
	specs := make(map[string]*scenario.Spec, len(entries))
	for _, e := range entries {
		data, err := fs.ReadFile(scenarioFS, "testdata/scenarios/"+e.Name())
		if err != nil {
			return nil, fmt.Errorf("testbed: scenario %s: %w", e.Name(), err)
		}
		sp, err := scenario.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("testbed: scenario %s: %w", e.Name(), err)
		}
		if _, dup := specs[sp.Name]; dup {
			return nil, fmt.Errorf("testbed: scenario %s: duplicate name %q", e.Name(), sp.Name)
		}
		specs[sp.Name] = sp
	}
	return specs, nil
}

// Scenario loads one catalog scenario by name, with its base (if any)
// resolved against the catalog. The returned spec is validated, private
// to the caller, and ready for scenario.Compile.
func Scenario(name string) (*scenario.Spec, error) {
	specs, err := loadScenarios()
	if err != nil {
		return nil, err
	}
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown scenario %q (have %s)", name, strings.Join(scenarioKeys(specs), ", "))
	}
	return scenario.ResolveBase(sp, func(base string) (*scenario.Spec, error) {
		b, ok := specs[base]
		if !ok {
			return nil, fmt.Errorf("not in catalog (have %s)", strings.Join(scenarioKeys(specs), ", "))
		}
		return b, nil
	})
}

// MustScenario is Scenario for the checked-in catalog, where a load
// failure is a build defect, not an input error.
func MustScenario(name string) *scenario.Spec {
	sp, err := Scenario(name)
	if err != nil {
		panic(err)
	}
	return sp
}

// ScenarioNames lists the catalog, sorted.
func ScenarioNames() ([]string, error) {
	specs, err := loadScenarios()
	if err != nil {
		return nil, err
	}
	return scenarioKeys(specs), nil
}

func scenarioKeys(specs map[string]*scenario.Spec) []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
