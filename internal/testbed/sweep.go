package testbed

import (
	"fmt"
	"strings"
	"time"

	"mosquitonet/internal/scenario"
)

// The sweep experiment: generate N randomized-but-valid scenarios from
// the sweep-base template and run each through the generic scenario
// runner. A (seed, n) pair fully determines the variants and their
// outcomes, so BENCH_sweep.json is a byte-stable regression surface over
// a far wider slice of the mobility state space than the hand-written
// itineraries cover.

// SweepResult is the full sweep: one ScenarioRows per variant, in
// generation order.
type SweepResult struct {
	Rows   []ScenarioRows
	Export *Export
}

func (r *SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SWEEP: %d randomized scenarios\n", len(r.Rows))
	fmt.Fprintf(&b, "  %-16s %6s %6s %6s %8s %7s %12s\n",
		"scenario", "sent", "recv", "lost", "windows", "faults", "worst-blkout")
	for _, rows := range r.Rows {
		f := rows.Flows[0]
		var worst time.Duration
		for _, w := range f.Windows {
			if d := time.Duration(w.BlackoutNS); d > worst {
				worst = d
			}
		}
		fmt.Fprintf(&b, "  %-16s %6d %6d %6d %8d %7d %12v\n",
			rows.Scenario, f.PacketsSent, f.PacketsReceived, f.PacketsLost,
			len(f.Windows), len(rows.Faults), worst.Round(time.Millisecond))
	}
	return b.String()
}

// RunSweep generates n variants of the sweep-base scenario under seed and
// runs each one. The variant's own run also uses seed: the point is a
// deterministic spread of itineraries, not seed diversity.
func RunSweep(seed int64, n int) (*SweepResult, error) {
	base, err := Scenario("sweep-base")
	if err != nil {
		return nil, err
	}
	variants, err := scenario.GenerateSweep(base, seed, n)
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Export: &Export{Experiment: "sweep", Seed: seed}}
	for _, sp := range variants {
		sr, err := RunScenarioProbe(seed, sp)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: %w", sp.Name, err)
		}
		if len(sr.Rows.Flows) == 0 {
			return nil, fmt.Errorf("sweep %s: no probe flow scored", sp.Name)
		}
		// A sweep variant must not lose packets outside its attributed
		// windows: un-attributed loss means a fault or handoff escaped its
		// span, which is a simulator defect, not scenario noise. One
		// straggler per window is tolerated — a probe sent just before the
		// grace boundary can die inside the outage without attributing.
		f := sr.Rows.Flows[0]
		attributed := 0
		for _, w := range f.Windows {
			attributed += w.PacketsLost
		}
		if f.PacketsLost > attributed+len(f.Windows) {
			return nil, fmt.Errorf("sweep %s: %d packets lost but only %d attributed to %d windows",
				sp.Name, f.PacketsLost, attributed, len(f.Windows))
		}
		res.Rows = append(res.Rows, sr.Rows)
		res.Export.Snapshots = append(res.Export.Snapshots, sr.Export.Snapshots...)
	}
	res.Export.Rows = res.Rows
	return res, nil
}

// sweepWorstBlackout is the longest blackout across all windows of all
// flows, for smoke assertions.
func sweepWorstBlackout(rows []ScenarioRows) time.Duration {
	var worst time.Duration
	for _, r := range rows {
		for _, f := range r.Flows {
			for _, w := range f.Windows {
				if d := time.Duration(w.BlackoutNS); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}
