package testbed

import (
	"fmt"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// Well-known testbed addresses (Figure 5). These mirror the figure5
// scenario spec (testdata/scenarios/figure5.json) so experiment code can
// reference the topology without re-parsing it; TestFigure5SpecMatches
// pins the two against each other.
var (
	HomePrefix   = ip.MustParsePrefix("36.135.0.0/16") // MosquitoNet home subnet
	DeptPrefix   = ip.MustParsePrefix("36.8.0.0/16")   // CS department subnet
	RadioPrefix  = ip.MustParsePrefix("36.134.0.0/16") // Metricom radio subnet
	CampusPrefix = ip.MustParsePrefix("36.22.0.0/16")  // a campus net outside the department

	RouterHomeAddr   = ip.MustParseAddr("36.135.0.1")
	RouterDeptAddr   = ip.MustParseAddr("36.8.0.1")
	RouterRadioAddr  = ip.MustParseAddr("36.134.0.1")
	RouterCampusAddr = ip.MustParseAddr("36.22.0.1")

	MHHomeAddr  = ip.MustParseAddr("36.135.0.7") // the mobile host's permanent address
	MHRadioAddr = ip.MustParseAddr("36.134.0.7") // its fixed address on the radio subnet

	// SlowPrefix is a remote wired subnet reached across slow, high-latency
	// infrastructure; the foreign-agent ablation (A2) visits it because
	// packets in flight toward it take long enough to strand.
	SlowPrefix     = ip.MustParsePrefix("36.40.0.0/16")
	RouterSlowAddr = ip.MustParseAddr("36.40.0.1")
	MHSlowAddr     = ip.MustParseAddr("36.40.0.7") // MH's static address when collocated there
	FASlowAddr     = ip.MustParseAddr("36.40.0.2") // the foreign agent's address there

	CHAddr       = ip.MustParseAddr("36.8.0.99")  // correspondent on net 36.8
	CampusCHAddr = ip.MustParseAddr("36.22.0.99") // correspondent elsewhere on campus
)

// Testbed is the assembled Figure 5 environment: a compiled scenario
// world plus named role bindings for the entities every experiment
// touches. The roles are bound by the conventional figure5 names (subnet
// "home", host "ch", mobile "mh" with ifaces "eth0"/"strip0"); scenarios
// that omit a role leave its field nil.
type Testbed struct {
	// World is the compiled scenario: the full entity index, the
	// itinerary runner, and the fault injector.
	World *scenario.World

	Loop   *sim.Loop
	Tracer *trace.Tracer

	// Metrics is the simulation's telemetry registry and Packets its
	// packet-lifecycle log; both are enabled before any host or device is
	// built, so every layer registers itself.
	Metrics *metrics.Registry
	Packets *metrics.PacketLog

	HomeNet, DeptNet, RadioNet, CampusNet, SlowNet *link.Network

	// Router is the Pentium 90 connecting the subnets; the home agent and
	// the department's DHCP server are collocated on it, as in the paper's
	// usual configuration.
	Router   *stack.Host
	RouterTS *transport.Stack
	HA       *mip.HomeAgent
	DHCP     *dhcp.Server

	CH       *transport.Stack // correspondent host on 36.8
	CampusCH *transport.Stack // correspondent host on 36.22

	MH    *mip.MobileHost
	MHTS  *transport.Stack
	Eth   *mip.ManagedIface // PCMCIA Ethernet: home subnet or visiting 36.8
	Strip *mip.ManagedIface // Metricom radio on 36.134
}

// New assembles the testbed by compiling the figure5 scenario spec. All
// devices start down except the infrastructure's; drive the mobile host
// with ConnectHome / ColdSwitch / etc. on tb.MH.
func New(seed int64) *Testbed {
	tb, err := NewFromSpec(seed, MustScenario("figure5"))
	if err != nil {
		panic(fmt.Sprintf("testbed: %v", err))
	}
	return tb
}

// NewFromSpec compiles any resolved scenario spec and binds the Figure-5
// role fields by their conventional names. Experiment drivers use it to
// assemble variant scenarios (handoff, loadedhandoff, sweep offspring)
// that share the figure5 base topology.
func NewFromSpec(seed int64, spec *scenario.Spec) (*Testbed, error) {
	w, err := scenario.Compile(seed, spec)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		World:     w,
		Loop:      w.Loop,
		Tracer:    w.Tracer,
		Metrics:   w.Metrics,
		Packets:   w.Packets,
		HomeNet:   w.Networks["home"],
		DeptNet:   w.Networks["dept"],
		RadioNet:  w.Networks["radio"],
		CampusNet: w.Networks["campus"],
		SlowNet:   w.Networks["slow"],
		CH:        w.Stacks["ch"],
		CampusCH:  w.Stacks["campus-ch"],
	}
	if rs := spec.Topology.Routers; len(rs) == 1 {
		name := rs[0].Name
		tb.Router = w.Routers[name]
		tb.RouterTS = w.RouterTS[name]
		tb.HA = w.HAs[name]
		tb.DHCP = w.DHCPs[name]
	}
	if ms := spec.Topology.Mobiles; len(ms) == 1 {
		name := ms[0].Name
		tb.MH = w.Mobiles[name]
		tb.MHTS = w.Stacks[name]
		tb.Eth = w.MIfaces[name+"/eth0"]
		tb.Strip = w.MIfaces[name+"/strip0"]
	}
	return tb, nil
}

// newEndHost builds an ordinary (non-mobile) host.
func newEndHost(loop *sim.Loop, n *link.Network, name string, addr ip.Addr, pfx ip.Prefix, gw ip.Addr, delay time.Duration) *transport.Stack {
	h := stack.NewHost(loop, name, stack.Config{InputDelay: delay, OutputDelay: delay})
	d := link.NewDevice(loop, name+"-eth", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, addr, pfx, stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	h.AddDefaultRoute(gw, ifc)
	loop.RunFor(0)
	return transport.NewStack(h)
}

// Run advances the simulation.
func (tb *Testbed) Run(d time.Duration) { tb.Loop.RunFor(d) }

// MoveEthTo reattaches the PCMCIA Ethernet card to another network
// (carrying the subnotebook to a different wall jack). The device must be
// reconnected with a ColdSwitch (or Prepare) afterwards.
func (tb *Testbed) MoveEthTo(n *link.Network) {
	tb.Eth.Iface().Device().Detach()
	tb.Eth.Iface().Device().Attach(n)
}

// EthIsHome reports whether the Ethernet card is on the home network.
func (tb *Testbed) EthIsHome() bool {
	return tb.Eth.Iface().Device().Network() == tb.HomeNet
}

// MustConnectHome attaches the mobile host at home and fails the
// simulation on error.
func (tb *Testbed) MustConnectHome() {
	var fail error
	done := false
	tb.MH.ConnectHome(tb.Eth, RouterHomeAddr, func(err error) { fail, done = err, true })
	tb.Run(10 * time.Second)
	if !done || fail != nil {
		panic(fmt.Sprintf("testbed: ConnectHome: done=%v err=%v", done, fail))
	}
}

// MustConnectForeign attaches an interface on a foreign network and fails
// the simulation on error.
func (tb *Testbed) MustConnectForeign(mi *mip.ManagedIface) {
	var fail error
	done := false
	tb.MH.ConnectForeign(mi, func(err error) { fail, done = err, true })
	tb.Run(30 * time.Second)
	if !done || fail != nil {
		panic(fmt.Sprintf("testbed: ConnectForeign(%s): done=%v err=%v", mi.Name(), done, fail))
	}
}
