package testbed

import (
	"fmt"
	"time"

	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// Well-known testbed addresses (Figure 5).
var (
	HomePrefix   = ip.MustParsePrefix("36.135.0.0/16") // MosquitoNet home subnet
	DeptPrefix   = ip.MustParsePrefix("36.8.0.0/16")   // CS department subnet
	RadioPrefix  = ip.MustParsePrefix("36.134.0.0/16") // Metricom radio subnet
	CampusPrefix = ip.MustParsePrefix("36.22.0.0/16")  // a campus net outside the department

	RouterHomeAddr   = ip.MustParseAddr("36.135.0.1")
	RouterDeptAddr   = ip.MustParseAddr("36.8.0.1")
	RouterRadioAddr  = ip.MustParseAddr("36.134.0.1")
	RouterCampusAddr = ip.MustParseAddr("36.22.0.1")

	MHHomeAddr  = ip.MustParseAddr("36.135.0.7") // the mobile host's permanent address
	MHRadioAddr = ip.MustParseAddr("36.134.0.7") // its fixed address on the radio subnet

	// SlowPrefix is a remote wired subnet reached across slow, high-latency
	// infrastructure; the foreign-agent ablation (A2) visits it because
	// packets in flight toward it take long enough to strand.
	SlowPrefix     = ip.MustParsePrefix("36.40.0.0/16")
	RouterSlowAddr = ip.MustParseAddr("36.40.0.1")
	MHSlowAddr     = ip.MustParseAddr("36.40.0.7") // MH's static address when collocated there
	FASlowAddr     = ip.MustParseAddr("36.40.0.2") // the foreign agent's address there

	CHAddr       = ip.MustParseAddr("36.8.0.99")  // correspondent on net 36.8
	CampusCHAddr = ip.MustParseAddr("36.22.0.99") // correspondent elsewhere on campus
)

// Testbed is the assembled Figure 5 environment.
type Testbed struct {
	Loop   *sim.Loop
	Tracer *trace.Tracer

	// Metrics is the simulation's telemetry registry and Packets its
	// packet-lifecycle log; both are enabled before any host or device is
	// built, so every layer registers itself.
	Metrics *metrics.Registry
	Packets *metrics.PacketLog

	HomeNet, DeptNet, RadioNet, CampusNet, SlowNet *link.Network

	// Router is the Pentium 90 connecting the subnets; the home agent and
	// the department's DHCP server are collocated on it, as in the paper's
	// usual configuration.
	Router   *stack.Host
	RouterTS *transport.Stack
	HA       *mip.HomeAgent
	DHCP     *dhcp.Server

	CH       *transport.Stack // correspondent host on 36.8
	CampusCH *transport.Stack // correspondent host on 36.22

	MH    *mip.MobileHost
	MHTS  *transport.Stack
	Eth   *mip.ManagedIface // PCMCIA Ethernet: home subnet or visiting 36.8
	Strip *mip.ManagedIface // Metricom radio on 36.134
}

// New assembles the testbed. All devices start down except the
// infrastructure's; drive the mobile host with ConnectHome / ColdSwitch /
// etc. on tb.MH.
func New(seed int64) *Testbed {
	loop := sim.New(seed)
	tb := &Testbed{
		Loop:      loop,
		Tracer:    trace.New(loop),
		Metrics:   metrics.Enable(loop),
		Packets:   metrics.TracePackets(loop, 0),
		HomeNet:   link.NewNetwork(loop, "net-36.135", link.Ethernet()),
		DeptNet:   link.NewNetwork(loop, "net-36.8", link.Ethernet()),
		RadioNet:  link.NewNetwork(loop, "net-36.134", link.Radio()),
		CampusNet: link.NewNetwork(loop, "net-36.22", link.Ethernet()),
		SlowNet:   link.NewNetwork(loop, "net-36.40", slowWired()),
	}

	// Router (Pentium 90) with an interface per subnet.
	tb.Router = stack.NewHost(loop, "router", stack.Config{
		InputDelay:   HAInputDelay,
		OutputDelay:  HAOutputDelay,
		ForwardDelay: RouterForwardDelay,
	})
	addRouterIface := func(n *link.Network, addr ip.Addr, pfx ip.Prefix, p2p bool) *stack.Iface {
		d := link.NewDevice(loop, "r-"+n.Name(), 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := tb.Router.AddIface("r-"+n.Name(), d, addr, pfx, stack.IfaceOpts{PointToPoint: p2p})
		tb.Router.ConnectRoute(ifc)
		return ifc
	}
	homeIfc := addRouterIface(tb.HomeNet, RouterHomeAddr, HomePrefix, false)
	addRouterIface(tb.DeptNet, RouterDeptAddr, DeptPrefix, false)
	addRouterIface(tb.RadioNet, RouterRadioAddr, RadioPrefix, true)
	addRouterIface(tb.CampusNet, RouterCampusAddr, CampusPrefix, false)
	addRouterIface(tb.SlowNet, RouterSlowAddr, SlowPrefix, false)
	tb.Router.SetForwarding(true)
	tb.RouterTS = transport.NewStack(tb.Router)

	// Home agent, collocated on the router.
	ha, err := mip.NewHomeAgent(tb.RouterTS, mip.HomeAgentConfig{
		HomeIface:       homeIfc,
		HomePrefix:      HomePrefix,
		ProcessingDelay: HAProcessing,
		Tracer:          tb.Tracer,
	})
	if err != nil {
		panic(fmt.Sprintf("testbed: home agent: %v", err))
	}
	tb.HA = ha

	// DHCP service for visitors to the department subnet.
	srv, err := dhcp.NewServer(tb.RouterTS, dhcp.ServerConfig{
		Pool:            DeptPrefix,
		FirstHost:       100,
		LastHost:        150,
		Gateway:         RouterDeptAddr,
		ProcessingDelay: DHCPProcessing,
	})
	if err != nil {
		panic(fmt.Sprintf("testbed: dhcp: %v", err))
	}
	tb.DHCP = srv

	// Correspondent hosts.
	tb.CH = newEndHost(loop, tb.DeptNet, "ch", CHAddr, DeptPrefix, RouterDeptAddr)
	tb.CampusCH = newEndHost(loop, tb.CampusNet, "campus-ch", CampusCHAddr, CampusPrefix, RouterCampusAddr)

	// The mobile host: a Gateway Handbook 486.
	mhHost := stack.NewHost(loop, "mh", stack.Config{
		InputDelay:  MHProcDelay,
		OutputDelay: MHProcDelay,
	})
	tb.MHTS = transport.NewStack(mhHost)
	tb.MH = mip.NewMobileHost(tb.MHTS, mip.MobileHostConfig{
		HomeAddr:         MHHomeAddr,
		HomePrefix:       HomePrefix,
		HomeAgent:        RouterHomeAddr,
		Lifetime:         RegLifetime,
		ConfigureDelay:   ConfigureDelay,
		RouteChangeDelay: RouteChangeDelay,
		Tracer:           tb.Tracer,
	})

	// The PCMCIA Ethernet card uses the home configuration when attached
	// at home (ConnectHome) and DHCP when visiting net 36.8.
	ethDev := link.NewDevice(loop, "mh-eth", EthBringUp, EthBringUpJitter)
	ethDev.Attach(tb.HomeNet)
	eth, err := tb.MH.AddInterface("eth0", ethDev, false, nil)
	if err != nil {
		panic(err)
	}
	tb.Eth = eth

	stripDev := link.NewDevice(loop, "mh-strip", RadioBringUp, RadioBringUpJitter)
	stripDev.Attach(tb.RadioNet)
	strip, err := tb.MH.AddInterface("strip0", stripDev, true, &mip.StaticConfig{
		Addr:    MHRadioAddr,
		Prefix:  RadioPrefix,
		Gateway: RouterRadioAddr,
	})
	if err != nil {
		panic(err)
	}
	tb.Strip = strip

	loop.RunFor(0)
	return tb
}

// slowWired models the remote subnet's slow wired infrastructure: an
// ARP-capable broadcast medium with high latency and modest bandwidth.
func slowWired() link.Medium {
	return link.Medium{
		Name:          "slow-wired",
		Latency:       80 * time.Millisecond,
		LatencyJitter: 5 * time.Millisecond,
		BitRate:       512_000,
		MTU:           1500,
	}
}

// newEndHost builds an ordinary (non-mobile) host.
func newEndHost(loop *sim.Loop, n *link.Network, name string, addr ip.Addr, pfx ip.Prefix, gw ip.Addr) *transport.Stack {
	h := stack.NewHost(loop, name, stack.Config{InputDelay: CHProcDelay, OutputDelay: CHProcDelay})
	d := link.NewDevice(loop, name+"-eth", 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, addr, pfx, stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	h.AddDefaultRoute(gw, ifc)
	loop.RunFor(0)
	return transport.NewStack(h)
}

// Run advances the simulation.
func (tb *Testbed) Run(d time.Duration) { tb.Loop.RunFor(d) }

// MoveEthTo reattaches the PCMCIA Ethernet card to another network
// (carrying the subnotebook to a different wall jack). The device must be
// reconnected with a ColdSwitch (or Prepare) afterwards.
func (tb *Testbed) MoveEthTo(n *link.Network) {
	tb.Eth.Iface().Device().Detach()
	tb.Eth.Iface().Device().Attach(n)
}

// EthIsHome reports whether the Ethernet card is on the home network.
func (tb *Testbed) EthIsHome() bool {
	return tb.Eth.Iface().Device().Network() == tb.HomeNet
}

// MustConnectHome attaches the mobile host at home and fails the
// simulation on error.
func (tb *Testbed) MustConnectHome() {
	var fail error
	done := false
	tb.MH.ConnectHome(tb.Eth, RouterHomeAddr, func(err error) { fail, done = err, true })
	tb.Run(10 * time.Second)
	if !done || fail != nil {
		panic(fmt.Sprintf("testbed: ConnectHome: done=%v err=%v", done, fail))
	}
}

// MustConnectForeign attaches an interface on a foreign network and fails
// the simulation on error.
func (tb *Testbed) MustConnectForeign(mi *mip.ManagedIface) {
	var fail error
	done := false
	tb.MH.ConnectForeign(mi, func(err error) { fail, done = err, true })
	tb.Run(30 * time.Second)
	if !done || fail != nil {
		panic(fmt.Sprintf("testbed: ConnectForeign(%s): done=%v err=%v", mi.Name(), done, fail))
	}
}
