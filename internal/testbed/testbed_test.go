package testbed

import (
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/transport"
)

func TestTopologyConnectivityAtHome(t *testing.T) {
	tb := New(1)
	tb.MustConnectHome()
	served := startUDPEcho(tb.CH, 7)
	echoed := 0
	cli, err := tb.MHTS.UDP(ip.Unspecified, 0, func(transport.Datagram) { echoed++ })
	if err != nil {
		t.Fatal(err)
	}
	cli.SendTo(CHAddr, 7, []byte("home"))
	tb.Run(5 * time.Second)
	if *served != 1 || echoed != 1 {
		t.Fatalf("served=%d echoed=%d", *served, echoed)
	}
}

func TestTopologyVisitDeptNet(t *testing.T) {
	tb := New(1)
	tb.MoveEthTo(tb.DeptNet)
	tb.MustConnectForeign(tb.Eth)
	if !DeptPrefix.Contains(tb.MH.CareOf()) {
		t.Fatalf("care-of %v not on 36.8", tb.MH.CareOf())
	}
	if _, ok := tb.HA.Binding(MHHomeAddr); !ok {
		t.Fatal("no binding at the home agent")
	}
	served := startUDPEcho(tb.CampusCH, 7)
	cli, _ := tb.MHTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(CampusCHAddr, 7, []byte("visiting"))
	tb.Run(5 * time.Second)
	if *served != 1 {
		t.Fatal("tunneled traffic failed from 36.8")
	}
}

func TestTopologyVisitRadioNet(t *testing.T) {
	tb := New(1)
	tb.MustConnectForeign(tb.Strip)
	if tb.MH.CareOf() != MHRadioAddr {
		t.Fatalf("care-of %v, want the static radio address", tb.MH.CareOf())
	}
	served := startUDPEcho(tb.CH, 7)
	cli, _ := tb.MHTS.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(CHAddr, 7, []byte("over the air"))
	tb.Run(10 * time.Second)
	if *served != 1 {
		t.Fatal("tunneled traffic failed from the radio net")
	}
}

// TestE1Shape checks the first experiment against the paper: iterations
// lose at most one packet, the large majority lose none, and the
// disruption window stays under the 10 ms send interval.
func TestE1Shape(t *testing.T) {
	res, err := RunE1(42)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Histogram
	if h.Iterations() != E1Iterations {
		t.Fatalf("iterations = %d", h.Iterations())
	}
	if h.MaxLoss() > 1 {
		t.Fatalf("an iteration lost %d packets; paper bound is 1\n%s", h.MaxLoss(), h)
	}
	if h.Count(0) < E1Iterations/2 {
		t.Fatalf("only %d/%d iterations lost nothing\n%s", h.Count(0), E1Iterations, h)
	}
	if res.Window.Max() >= E1SendInterval {
		t.Fatalf("disruption window %v exceeds the 10ms bound", res.Window.Max())
	}
	if res.Window.N() != E1Iterations {
		t.Fatalf("window samples = %d", res.Window.N())
	}
	if !strings.Contains(res.String(), "E1") {
		t.Fatal("String() broken")
	}
}

// TestF7Shape checks the registration time-line against Figure 7's
// measured values: total ≈7.39ms, request->reply ≈4.79ms, home-agent
// turnaround ≈1.48ms.
func TestF7Shape(t *testing.T) {
	res, err := RunF7(42)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol time.Duration) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
		}
	}
	within("total", res.Total.Mean(), PaperRegTotal, 900*time.Microsecond)
	within("request->reply", res.RequestReply.Mean(), PaperRegRequestReply, 600*time.Microsecond)
	within("HA turnaround", res.HATurnaround.Mean(), PaperHATurnaround, 300*time.Microsecond)
	if res.Total.N() != F7Iterations {
		t.Fatalf("samples = %d", res.Total.N())
	}
	if res.Total.StdDev() == 0 {
		t.Error("degenerate deviation; jitter model inactive")
	}
	if res.Configure.Mean() <= 0 || res.RouteChange.Mean() <= 0 {
		t.Error("pre-registration phases not measured")
	}
	t.Logf("\n%s", res)
}

// TestF6Shape checks the device-switch histograms: cold switches lose a
// small number of packets bounded by the 1.25 s window at 250 ms spacing;
// hot switches usually lose none.
func TestF6Shape(t *testing.T) {
	res, err := RunF6(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []F6Scenario{ColdWiredToWireless, ColdWirelessToWired} {
		h := res.Histograms[sc]
		if h.Iterations() != F6Iterations {
			t.Fatalf("%v iterations = %d", sc, h.Iterations())
		}
		// 1.25s at 250ms spacing = at most 5 in-window losses; allow one
		// more for a radio drop.
		if h.MaxLoss() > 6 {
			t.Errorf("%v lost up to %d packets\n%s", sc, h.MaxLoss(), h)
		}
		if h.TotalLost() == 0 {
			t.Errorf("%v lost nothing; cold switches must lose packets", sc)
		}
	}
	for _, sc := range []F6Scenario{HotWiredToWireless, HotWirelessToWired} {
		h := res.Histograms[sc]
		if h.Count(0)+h.Count(1) < F6Iterations-1 {
			t.Errorf("%v: hot switching should usually lose nothing\n%s", sc, h)
		}
	}
	if res.Blackout.Max() > PaperColdSwitchWindow {
		t.Errorf("cold blackout %v exceeds the paper's %v bound", res.Blackout.Max(), PaperColdSwitchWindow)
	}
	// Wired->wireless must be the costlier direction (radio bring-up).
	if res.Histograms[ColdWiredToWireless].TotalLost() < res.Histograms[ColdWirelessToWired].TotalLost() {
		t.Log("note: wired->wireless lost fewer packets than wireless->wired this seed")
	}
	t.Logf("\n%s", res)
}

// TestRTTShape anchors the radio path at the paper's 200-250 ms RTT.
func TestRTTShape(t *testing.T) {
	res, err := RunRTT(42, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RadioRTT.N() < 15 {
		t.Fatalf("only %d radio samples (loss too high?)", res.RadioRTT.N())
	}
	mean := res.RadioRTT.Mean()
	if mean < PaperRadioRTTLow || mean > PaperRadioRTTHigh {
		t.Errorf("radio RTT mean %v outside the paper's 200-250ms", mean)
	}
	if res.WiredRTT.Mean() > 15*time.Millisecond {
		t.Errorf("wired RTT %v implausibly high", res.WiredRTT.Mean())
	}
	t.Logf("\n%s", res)
}

// TestA1Shape: the triangle route must beat the tunnel to a local
// correspondent, transit filters must break it, and the probe must recover
// delivery via the tunnel.
func TestA1Shape(t *testing.T) {
	res, err := RunA1(42, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.TriangleRTTLocal.Mean() >= res.TunnelRTTLocal.Mean() {
		t.Errorf("triangle (%v) not faster than tunnel (%v) to a local CH",
			res.TriangleRTTLocal.Mean(), res.TunnelRTTLocal.Mean())
	}
	if res.TriangleRTTCampus.Mean() >= res.TunnelRTTCampus.Mean() {
		t.Errorf("triangle (%v) not faster than tunnel (%v) to a campus CH",
			res.TriangleRTTCampus.Mean(), res.TunnelRTTCampus.Mean())
	}
	if res.EncapOverhead != 20 {
		t.Errorf("encap overhead %d, want the paper's 20 bytes", res.EncapOverhead)
	}
	if res.FilteredTriangleDelivered != 0 {
		t.Errorf("transit filter let %d triangle packets through", res.FilteredTriangleDelivered)
	}
	if res.FallbackDelivered != res.FallbackSent {
		t.Errorf("fallback delivered %d/%d", res.FallbackDelivered, res.FallbackSent)
	}
	t.Logf("\n%s", res)
}

// TestA2Shape: the foreign agent must strictly reduce handoff loss by
// forwarding stragglers.
func TestA2Shape(t *testing.T) {
	res, err := RunA2(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwarded == 0 {
		t.Error("the FA never forwarded a straggler")
	}
	if res.WithFA.TotalLost() >= res.WithoutFA.TotalLost() {
		t.Errorf("FA did not reduce loss: with=%d without=%d",
			res.WithFA.TotalLost(), res.WithoutFA.TotalLost())
	}
	t.Logf("\n%s", res)
}

// TestA3Shape: one home agent serves increasing visitor fleets with stable
// per-registration latency.
func TestA3Shape(t *testing.T) {
	res, err := RunA3(42, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Registered != row.MobileHosts {
			t.Errorf("n=%d: only %d registered", row.MobileHosts, row.Registered)
		}
		if row.Latency.N() < row.MobileHosts {
			t.Errorf("n=%d: %d latency samples", row.MobileHosts, row.Latency.N())
		}
	}
	// Mean latency must not explode with fleet size (HA is not the
	// bottleneck, per the paper's claim).
	first, last := res.Rows[0].Latency.Mean(), res.Rows[len(res.Rows)-1].Latency.Mean()
	if last > 20*first {
		t.Errorf("registration latency scaled %vx with fleet size", last/first)
	}
	t.Logf("\n%s", res)
}

func TestEchoProbeAccounting(t *testing.T) {
	tb := New(1)
	tb.MustConnectHome()
	probe, err := NewEchoProbe(tb.Loop, tb.CH, tb.MHTS, MHHomeAddr, 7, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	probe.Start()
	tb.Run(5 * time.Second)
	sent, recv := quiesce(tb, probe)
	if sent == 0 {
		t.Fatal("probe sent nothing")
	}
	if LossBetween(0, 0, sent, recv) != 0 {
		t.Fatalf("lossless path lost packets: sent=%d recv=%d", sent, recv)
	}
	// Pause really pauses.
	before := probe.Sent()
	tb.Run(2 * time.Second)
	if probe.Sent() != before {
		t.Fatal("probe kept sending while paused")
	}
	probe.Stop()
	probe.Start() // no-op after Stop
	tb.Run(time.Second)
	if probe.Sent() != before {
		t.Fatal("probe restarted after Stop")
	}
}

// TestA4Shape: the handoff-strategy ordering must hold — cold loses the
// most, hot loses only radio in-flight packets, simultaneous bindings lose
// (almost) nothing.
func TestA4Shape(t *testing.T) {
	res, err := RunA4(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	cold := float64(res.Cold.TotalLost()) / float64(res.Cold.Iterations())
	hot := float64(res.Hot.TotalLost()) / float64(res.Hot.Iterations())
	sim := float64(res.Simultaneous.TotalLost()) / float64(res.Simultaneous.Iterations())
	if !(cold > hot) {
		t.Errorf("cold (%.1f) should lose more than hot (%.1f)", cold, hot)
	}
	if sim > hot {
		t.Errorf("simultaneous (%.1f) should not lose more than hot (%.1f)", sim, hot)
	}
	if sim > 0.5 {
		t.Errorf("simultaneous bindings still lost %.1f pkts/handoff", sim)
	}
	if res.Duplicated == 0 {
		t.Error("no duplication happened")
	}
	t.Logf("\n%s", res)
}

// TestRadioThroughputEnvelope validates the radio model against the
// paper's own characterization: nominal 100 Kbit/s, 30-40 Kbit/s achieved.
func TestRadioThroughputEnvelope(t *testing.T) {
	res, err := RunThroughput(42, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesReceived < 47*1000 {
		t.Fatalf("received %d bytes", res.BytesReceived)
	}
	if res.Kbits < 30 || res.Kbits > 40 {
		t.Fatalf("radio throughput %.1f Kbit/s outside the paper's 30-40 Kbit/s", res.Kbits)
	}
	t.Logf("\n%s", res)
}

// TestE1AcrossSeeds guards the E1 shape against calibration luck: the
// "lose 0 or 1, mostly 0" result must hold for any seed, not just the one
// the tables were generated with.
func TestE1AcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for _, seed := range []int64{1, 2, 3, 1996, 77} {
		res, err := RunE1(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Histogram.MaxLoss() > 1 {
			t.Errorf("seed %d: an iteration lost %d packets", seed, res.Histogram.MaxLoss())
		}
		if res.Histogram.Count(0) < E1Iterations/2 {
			t.Errorf("seed %d: only %d/20 lost nothing", seed, res.Histogram.Count(0))
		}
	}
}
