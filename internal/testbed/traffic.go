package testbed

import (
	"fmt"
	"time"

	"mosquitonet/internal/app"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/transport"
)

// loadedFlow pairs one traffic generator's tracker with its labeling.
type loadedFlow struct {
	name  string
	proto string
	model string
	size  int // payload bytes per message, for goodput
	flow  *stats.FlowTracker
}

// loadedTraffic is a scenario traffic section compiled onto the app
// layer: the servers, the per-flow trackers, and the generators, ready to
// Start once the topology has settled.
type loadedTraffic struct {
	broker *app.Broker
	web    *app.HTTPServer

	flows    []loadedFlow
	pubFlows []*app.PubFlow
	reqFlows []*app.ReqFlow
}

// trafficStack resolves a host name from the traffic section to its
// transport stack.
func trafficStack(tb *Testbed, host string) (*transport.Stack, error) {
	ts, ok := tb.World.Stacks[host]
	if !ok {
		return nil, fmt.Errorf("traffic: unknown host %q", host)
	}
	return ts, nil
}

// trafficAddr resolves a host name to the address its servers listen on:
// an end host's configured address, or a mobile host's home address.
func trafficAddr(tb *Testbed, host string) (ip.Addr, error) {
	top := &tb.World.Spec.Topology
	for i := range top.Hosts {
		if top.Hosts[i].Name == host {
			return ip.MustParseAddr(top.Hosts[i].Addr), nil
		}
	}
	for i := range top.Mobiles {
		if top.Mobiles[i].Name == host {
			return ip.MustParseAddr(top.Mobiles[i].HomeAddr), nil
		}
	}
	return ip.Addr{}, fmt.Errorf("traffic: unknown host %q", host)
}

// buildLoadedTraffic lowers a scenario's MQTT and HTTP traffic onto the
// running testbed: servers first, then client sessions (waiting for
// CONNACKs), then subscriptions and per-flow trackers (waiting for
// SUBACKs). The construction order follows the spec's declaration order
// exactly — construction order is event order and therefore behavior.
func buildLoadedTraffic(tb *Testbed, t *scenario.Traffic) (*loadedTraffic, error) {
	lt := &loadedTraffic{}

	mqttClients := map[string]*app.Client{}
	if t.MQTT != nil {
		ts, err := trafficStack(tb, t.MQTT.Broker.Host)
		if err != nil {
			return nil, err
		}
		lt.broker, err = app.NewBroker(ts, ip.Unspecified, uint16(t.MQTT.Broker.Port), "broker")
		if err != nil {
			return nil, err
		}
	}
	if t.HTTP != nil {
		ts, err := trafficStack(tb, t.HTTP.Server.Host)
		if err != nil {
			return nil, err
		}
		lt.web, err = app.NewHTTPServer(ts, ip.Unspecified, uint16(t.HTTP.Server.Port), "web", app.EchoHandler)
		if err != nil {
			return nil, err
		}
	}

	if t.MQTT != nil {
		brokerAddr, err := trafficAddr(tb, t.MQTT.Broker.Host)
		if err != nil {
			return nil, err
		}
		for i := range t.MQTT.Clients {
			c := &t.MQTT.Clients[i]
			ts, err := trafficStack(tb, c.Host)
			if err != nil {
				return nil, err
			}
			mqttClients[c.Name] = app.NewClient(ts, c.Name)
		}
		connected := 0
		onConnack := func(err error) {
			if err == nil {
				connected++
			}
		}
		for i := range t.MQTT.Clients {
			if err := mqttClients[t.MQTT.Clients[i].Name].Connect(brokerAddr, uint16(t.MQTT.Broker.Port), onConnack); err != nil {
				return nil, err
			}
		}
		if !runUntil(tb, 30*time.Second, func() bool { return connected == len(t.MQTT.Clients) }) {
			return nil, fmt.Errorf("traffic: mqtt clients did not connect (%d/%d)", connected, len(t.MQTT.Clients))
		}
	}

	httpClients := map[string]*app.HTTPClient{}
	if t.HTTP != nil {
		serverAddr, err := trafficAddr(tb, t.HTTP.Server.Host)
		if err != nil {
			return nil, err
		}
		for i := range t.HTTP.Flows {
			f := &t.HTTP.Flows[i]
			ts, err := trafficStack(tb, f.Host)
			if err != nil {
				return nil, err
			}
			httpClients[f.Client] = app.NewHTTPClient(ts, f.Client)
		}
		for i := range t.HTTP.Flows {
			if err := httpClients[t.HTTP.Flows[i].Client].Connect(serverAddr, uint16(t.HTTP.Server.Port), nil); err != nil {
				return nil, err
			}
		}
	}

	if t.MQTT != nil {
		subAcks := 0
		for i := range t.MQTT.Pubs {
			pub := &t.MQTT.Pubs[i]
			from, to := mqttClients[pub.From], mqttClients[pub.To]
			if from == nil || to == nil {
				return nil, fmt.Errorf("traffic: publication %q references unknown client", pub.Topic)
			}
			ft := stats.NewFlowTracker(pub.Topic)
			if err := to.Subscribe(pub.Topic, byte(pub.QoS), app.SinkHandler(tb.Loop, ft), func() { subAcks++ }); err != nil {
				return nil, err
			}
			lt.flows = append(lt.flows, loadedFlow{
				name: pub.Topic, proto: "mqtt-qos1", model: "open-loop", size: pub.Size, flow: ft,
			})
			lt.pubFlows = append(lt.pubFlows, app.NewPubFlow(from, ft, pub.Topic, pub.Interval.D(), byte(pub.QoS), pub.Size))
		}
		if !runUntil(tb, 30*time.Second, func() bool { return subAcks == len(t.MQTT.Pubs) }) {
			return nil, fmt.Errorf("traffic: subscriptions not acked (%d/%d)", subAcks, len(t.MQTT.Pubs))
		}
	}

	if t.HTTP != nil {
		trackers := make([]*stats.FlowTracker, len(t.HTTP.Flows))
		for i := range t.HTTP.Flows {
			f := &t.HTTP.Flows[i]
			trackers[i] = stats.NewFlowTracker(f.Name)
			model := "open-loop"
			if f.Closed {
				model = "closed-loop"
			}
			lt.flows = append(lt.flows, loadedFlow{
				name: f.Name, proto: "http", model: model, size: f.Size, flow: trackers[i],
			})
		}
		for i := range t.HTTP.Flows {
			f := &t.HTTP.Flows[i]
			lt.reqFlows = append(lt.reqFlows,
				app.NewReqFlow(httpClients[f.Client], trackers[i], f.Path, f.Interval.D(), f.Closed, f.Size))
		}
	}
	return lt, nil
}

// start begins every generator, publications first, in declaration order.
func (lt *loadedTraffic) start() {
	for _, f := range lt.pubFlows {
		f.Start()
	}
	for _, f := range lt.reqFlows {
		f.Start()
	}
}

// stop halts every generator; in-flight messages still count on arrival.
func (lt *loadedTraffic) stop() {
	for _, f := range lt.pubFlows {
		f.Stop()
	}
	for _, f := range lt.reqFlows {
		f.Stop()
	}
}

// drained reports whether every flow has received everything it sent.
func (lt *loadedTraffic) drained() bool {
	for _, lf := range lt.flows {
		sent, received, _, _ := lf.flow.Totals()
		if received < sent {
			return false
		}
	}
	return true
}
