package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mosquitonet/internal/sim"
)

// FlightDump is one captured snapshot: everything the bounded tracer
// retained at the moment a trigger fired, plus why it fired.
type FlightDump struct {
	At     sim.Time `json:"at_ns"`
	Reason string   `json:"reason"`
	Events []Event  `json:"events"`
	Spans  []Span   `json:"spans"`
}

// flightRule is one anomaly trigger: a kind prefix, optionally rate-gated
// (fire only when count matches land within window).
type flightRule struct {
	prefix string
	count  int           // 1 = fire on every match
	window time.Duration // sliding window for count > 1
	recent []sim.Time    // match times inside the window
}

// FlightRecorder is the always-on black box: it bounds a Tracer to a ring
// and dumps the ring's contents when an anomaly trigger fires — a
// registration retry exhaustion, a burst of route-less drops. Dumps are
// capped; triggers past the cap are counted, not stored. A nil
// FlightRecorder is valid and does nothing.
type FlightRecorder struct {
	t          *Tracer
	rules      []*flightRule
	dumps      []FlightDump
	maxDumps   int
	suppressed uint64

	prevHook     func(Event)
	prevSpanHook func(Span)
}

// NewFlightRecorder bounds t to capacity (when > 0) and starts observing
// it. maxDumps caps retained dumps (<= 0 means 4). The recorder chains any
// Hook/SpanHook already installed on the tracer, so it composes with other
// observers.
func NewFlightRecorder(t *Tracer, capacity, maxDumps int) *FlightRecorder {
	if t == nil {
		return nil
	}
	if capacity > 0 {
		t.SetCapacity(capacity)
	}
	if maxDumps <= 0 {
		maxDumps = 4
	}
	f := &FlightRecorder{t: t, maxDumps: maxDumps, prevHook: t.Hook, prevSpanHook: t.SpanHook}
	t.Hook = func(e Event) {
		if f.prevHook != nil {
			f.prevHook(e)
		}
		f.observe(e.Kind, e.At)
	}
	t.SpanHook = func(s Span) {
		if f.prevSpanHook != nil {
			f.prevSpanHook(s)
		}
		f.observe(s.Kind, s.End)
	}
	return f
}

// TriggerOn dumps whenever an event or closing span matches kindPrefix
// (e.g. "reg.timeout").
func (f *FlightRecorder) TriggerOn(kindPrefix string) {
	if f == nil {
		return
	}
	f.rules = append(f.rules, &flightRule{prefix: kindPrefix, count: 1})
}

// TriggerOnBurst dumps when count events or closing spans matching
// kindPrefix land within window of one another (e.g. 8 "drop.noroute"
// within 500ms). The window resets after firing.
func (f *FlightRecorder) TriggerOnBurst(kindPrefix string, count int, window time.Duration) {
	if f == nil {
		return
	}
	if count < 1 {
		count = 1
	}
	f.rules = append(f.rules, &flightRule{prefix: kindPrefix, count: count, window: window})
}

// Trigger captures a dump now with an explicit reason (a manual "mark").
func (f *FlightRecorder) Trigger(reason string) {
	if f == nil {
		return
	}
	f.dump(f.t.loop.Now(), reason)
}

func (f *FlightRecorder) observe(kind string, at sim.Time) {
	for _, r := range f.rules {
		if !hasPrefix(kind, r.prefix) {
			continue
		}
		if r.count <= 1 {
			f.dump(at, "event: "+kind)
			continue
		}
		// Slide the window, then append this match.
		keep := r.recent[:0]
		for _, ts := range r.recent {
			if at.Sub(ts) <= r.window {
				keep = append(keep, ts)
			}
		}
		r.recent = append(keep, at)
		if len(r.recent) >= r.count {
			f.dump(at, fmt.Sprintf("burst: %d×%s within %v", len(r.recent), r.prefix, r.window))
			r.recent = r.recent[:0]
		}
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

func (f *FlightRecorder) dump(at sim.Time, reason string) {
	if len(f.dumps) >= f.maxDumps {
		f.suppressed++
		return
	}
	f.dumps = append(f.dumps, FlightDump{
		At:     at,
		Reason: reason,
		Events: f.t.Events(),
		Spans:  f.t.Spans(),
	})
}

// Dumps returns the captured dumps in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump {
	if f == nil {
		return nil
	}
	return append([]FlightDump(nil), f.dumps...)
}

// Suppressed returns how many triggers fired after the dump cap was
// reached.
func (f *FlightRecorder) Suppressed() uint64 {
	if f == nil {
		return 0
	}
	return f.suppressed
}

// WriteJSON writes the captured dumps as a JSON array.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		return nil
	}
	b, err := json.MarshalIndent(f.dumps, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
