package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mosquitonet/internal/sim"
)

// Attr is one key/value annotation on a span. Attrs are kept in first-set
// order and setting an existing key replaces its value, so a span's
// serialized form depends only on the sequence of SetAttr calls — never on
// map iteration order.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in the causal span tree: a handoff, a DHCP
// acquisition, a registration attempt (including its retries), a hook-chain
// traversal. Start and End are sim-time instants, so a span's duration is
// the virtual cost of the operation, and two same-seed runs produce
// identical span trees. A nil *Span is valid everywhere and records
// nothing, mirroring the nil-Tracer contract.
type Span struct {
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Kind   string   `json:"kind"` // lowercase dotted constant, e.g. "handoff.cold"
	Actor  string   `json:"actor"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"`
	Attrs  []Attr   `json:"attrs,omitempty"`

	tracer *Tracer
	open   bool
}

// StartSpan opens a span for actor. The span is parented to the innermost
// span still open for the same actor (the per-actor ambient context), so
// nested operations — a DHCP acquisition inside a cold switch — form a
// tree without any explicit plumbing. Use StartChild to parent across
// actors or to override the ambient context.
func (t *Tracer) StartSpan(actor, kind string) *Span {
	if t == nil {
		return nil
	}
	var parent uint64
	if st := t.active[actor]; len(st) > 0 {
		parent = st[len(st)-1].ID
	}
	return t.startSpan(parent, actor, kind)
}

// StartChild opens a span explicitly parented to parent (nil parent means
// a root span), bypassing the ambient per-actor context.
func (t *Tracer) StartChild(parent *Span, actor, kind string) *Span {
	if t == nil {
		return nil
	}
	var pid uint64
	if parent != nil {
		pid = parent.ID
	}
	return t.startSpan(pid, actor, kind)
}

func (t *Tracer) startSpan(parent uint64, actor, kind string) *Span {
	t.nextSpanID++
	s := &Span{
		ID:     t.nextSpanID,
		Parent: parent,
		Kind:   kind,
		Actor:  actor,
		Start:  t.loop.Now(),
		tracer: t,
		open:   true,
	}
	if t.active == nil {
		t.active = make(map[string][]*Span)
	}
	t.active[actor] = append(t.active[actor], s)
	t.retainSpan(s)
	return s
}

// retainSpan appends s to the span ring, evicting the oldest span when the
// tracer is bounded.
func (t *Tracer) retainSpan(s *Span) {
	if t.cap > 0 && len(t.spans) == t.cap {
		t.spans[t.spanStart] = s
		t.spanStart = (t.spanStart + 1) % t.cap
		t.droppedSpans++
		return
	}
	t.spans = append(t.spans, s)
}

// SetAttr annotates the span, replacing any previous value for key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attrf is SetAttr with fmt.Sprintf conventions for the value.
func (s *Span) Attrf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf(format, args...))
}

// Attr returns the span's value for key, if set.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Done closes the span at the current virtual time, pops it from the
// ambient per-actor context, and hands a copy to the tracer's SpanHook.
// Closing an already-closed (or nil) span is a no-op, so error paths can
// call Done defensively.
func (s *Span) Done() {
	if s == nil || !s.open {
		return
	}
	t := s.tracer
	s.End = t.loop.Now()
	s.open = false
	// Remove from the actor's ambient stack wherever it sits: spans end in
	// callback order, which is not always LIFO.
	st := t.active[s.Actor]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == s {
			t.active[s.Actor] = append(st[:i], st[i+1:]...)
			break
		}
	}
	if t.SpanHook != nil {
		t.SpanHook(*s)
	}
}

// Fail annotates the span with err (when non-nil) and closes it.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("err", err.Error())
	}
	s.Done()
}

// Open reports whether the span has not yet been closed.
func (s *Span) Open() bool { return s != nil && s.open }

// Duration returns the span's virtual duration (zero while open).
func (s *Span) Duration() sim.Time {
	if s == nil || s.open {
		return 0
	}
	return s.End - s.Start
}

// orderedSpans returns the retained spans oldest-first.
func (t *Tracer) orderedSpans() []*Span {
	if t.spanStart == 0 {
		return t.spans
	}
	out := make([]*Span, 0, len(t.spans))
	out = append(out, t.spans[t.spanStart:]...)
	out = append(out, t.spans[:t.spanStart]...)
	return out
}

// Spans returns copies of the retained spans in start order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	src := t.orderedSpans()
	out := make([]Span, len(src))
	for i, s := range src {
		out[i] = *s
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	return out
}

// FindSpans returns copies of the retained spans whose kind has one of the
// given prefixes (all spans when none are given), in start order.
func (t *Tracer) FindSpans(kindPrefixes ...string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.orderedSpans() {
		if len(kindPrefixes) == 0 || hasAnyPrefix(s.Kind, kindPrefixes) {
			c := *s
			c.Attrs = append([]Attr(nil), s.Attrs...)
			out = append(out, c)
		}
	}
	return out
}

func hasAnyPrefix(kind string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(kind, p) {
			return true
		}
	}
	return false
}

// DroppedSpans returns how many spans the ring has evicted.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	return t.droppedSpans
}

// WriteSpansJSONL writes the retained spans as one JSON object per line,
// in start order — the span-side analogue of WriteJSONL.
func (t *Tracer) WriteSpansJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, s := range t.orderedSpans() {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// SpanTree renders the retained spans as an indented tree, children under
// parents, ordered by (start, id). Spans whose kind matches one of the
// exclude prefixes are omitted (with their subtrees re-rooted), which keeps
// high-volume chain-traversal spans out of a lifecycle overview.
func (t *Tracer) SpanTree(excludePrefixes ...string) string {
	if t == nil {
		return ""
	}
	spans := t.orderedSpans()
	children := make(map[uint64][]*Span)
	present := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	var roots []*Span
	for _, s := range spans {
		if len(excludePrefixes) > 0 && hasAnyPrefix(s.Kind, excludePrefixes) {
			continue
		}
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			// Root, or the parent was evicted/excluded: re-root here.
			roots = append(roots, s)
		}
	}
	var b strings.Builder
	var render func(s *Span, depth int)
	render = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%12v %s%s %s", s.Start, strings.Repeat("  ", depth), s.Kind, s.Actor)
		if s.open {
			b.WriteString(" (open)")
		} else {
			fmt.Fprintf(&b, " (%v)", s.End.Sub(s.Start))
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		if r.Parent != 0 && present[r.Parent] && !excludedParent(spans, r.Parent, excludePrefixes) {
			continue // rendered under its parent
		}
		render(r, 0)
	}
	return b.String()
}

// excludedParent reports whether the span with the given id matches one of
// the exclude prefixes (so its children were re-rooted).
func excludedParent(spans []*Span, id uint64, excludePrefixes []string) bool {
	if len(excludePrefixes) == 0 {
		return false
	}
	for _, s := range spans {
		if s.ID == id {
			return hasAnyPrefix(s.Kind, excludePrefixes)
		}
	}
	return false
}

// SpanKindCounts returns (kind, count) pairs for the retained spans,
// sorted by kind — the summary introspection mnet -spans prints.
func (t *Tracer) SpanKindCounts() []struct {
	Kind  string
	Count int
} {
	if t == nil {
		return nil
	}
	counts := make(map[string]int)
	for _, s := range t.orderedSpans() {
		counts[s.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]struct {
		Kind  string
		Count int
	}, len(kinds))
	for i, k := range kinds {
		out[i].Kind, out[i].Count = k, counts[k]
	}
	return out
}

// --- Chrome trace-event export -------------------------------------------

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// spans, "i" instants, "M" metadata), loadable by chrome://tracing and
// Perfetto. Field order is fixed by the struct, and args maps marshal with
// sorted keys, so the export is byte-deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds of virtual time
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained spans and events in the Chrome
// trace-event JSON format: one "thread" per actor, spans as complete ("X")
// events with their attrs as args, plain trace events as thread-scoped
// instants. Load the output in chrome://tracing or ui.perfetto.dev to see
// the handoff span tree on a timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.orderedSpans()
	events := t.ordered()

	// Stable actor -> tid mapping, alphabetical.
	actorSet := make(map[string]bool)
	for _, s := range spans {
		actorSet[s.Actor] = true
	}
	for _, e := range events {
		actorSet[e.Actor] = true
	}
	actors := make([]string, 0, len(actorSet))
	for a := range actorSet {
		actors = append(actors, a)
	}
	sort.Strings(actors)
	tid := make(map[string]int, len(actors))
	for i, a := range actors {
		tid[a] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "mosquitonet"},
	})
	for _, a := range actors {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid[a],
			Args: map[string]string{"name": a},
		})
	}
	for _, s := range spans {
		end := s.End
		if s.open || end < s.Start {
			end = s.Start
		}
		dur := float64(end.Sub(s.Start).Nanoseconds()) / 1e3
		ev := chromeEvent{
			Name: s.Kind, Cat: "span", Phase: "X",
			TS: float64(s.Start.Duration().Nanoseconds()) / 1e3, Dur: &dur,
			PID: 1, TID: tid[s.Actor],
		}
		if len(s.Attrs) > 0 || s.Parent != 0 {
			ev.Args = make(map[string]string, len(s.Attrs)+1)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
			if s.Parent != 0 {
				ev.Args["parent_span"] = fmt.Sprintf("%d", s.Parent)
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	for _, e := range events {
		ev := chromeEvent{
			Name: e.Kind, Cat: "event", Phase: "i",
			TS:  float64(e.At.Duration().Nanoseconds()) / 1e3,
			PID: 1, TID: tid[e.Actor], Scope: "t",
		}
		if e.Detail != "" {
			ev.Args = map[string]string{"detail": e.Detail}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
