package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

func TestSpanAutoParenting(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)

	var handoff, dhcp, reg *Span
	loop.Schedule(time.Millisecond, func() {
		handoff = tr.StartSpan("mh", "handoff.cold")
		handoff.SetAttr("to", "eth0")
	})
	loop.Schedule(2*time.Millisecond, func() { dhcp = tr.StartSpan("mh", "handoff.dhcp") })
	loop.Schedule(5*time.Millisecond, func() { dhcp.Done() })
	loop.Schedule(6*time.Millisecond, func() { reg = tr.StartSpan("mh", "reg.attempt") })
	loop.Schedule(8*time.Millisecond, func() { reg.Done(); handoff.Done() })
	// A different actor's span opened mid-handoff must NOT nest under mh.
	var serve *Span
	loop.Schedule(7*time.Millisecond, func() { serve = tr.StartSpan("router", "reg.serve") })
	loop.Schedule(7500*time.Microsecond, func() { serve.Done() })
	loop.Run()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	if handoff.Parent != 0 {
		t.Fatalf("handoff parent = %d, want root", handoff.Parent)
	}
	if dhcp.Parent != handoff.ID || reg.Parent != handoff.ID {
		t.Fatalf("children not parented to handoff: dhcp=%d reg=%d handoff=%d",
			dhcp.Parent, reg.Parent, handoff.ID)
	}
	if serve.Parent != 0 {
		t.Fatalf("cross-actor span must be a root, parent = %d", serve.Parent)
	}
	if handoff.End != sim.Time(8*time.Millisecond) || handoff.Duration() != sim.Time(7*time.Millisecond) {
		t.Fatalf("handoff end/duration: %v/%v", handoff.End, handoff.Duration())
	}
	if v, ok := handoff.Attr("to"); !ok || v != "eth0" {
		t.Fatalf("attr lost: %q %v", v, ok)
	}
}

func TestSpanOutOfOrderDone(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	a := tr.StartSpan("mh", "op.a")
	b := tr.StartSpan("mh", "op.b")
	a.Done() // not LIFO: a ends while b is still open
	c := tr.StartSpan("mh", "op.c")
	if c.Parent != b.ID {
		t.Fatalf("c parent = %d, want b (%d)", c.Parent, b.ID)
	}
	c.Done()
	b.Done()
	b.Done() // double-Done is a no-op
	if b.Open() {
		t.Fatal("b still open")
	}
}

func TestSpanSetAttrReplaces(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	s := tr.StartSpan("mh", "reg.attempt")
	s.SetAttr("tries", "1")
	s.Attrf("tries", "%d", 2)
	s.Done()
	if len(s.Attrs) != 1 || s.Attrs[0].Value != "2" {
		t.Fatalf("SetAttr must replace: %+v", s.Attrs)
	}
}

func TestNilSpanAndTracerSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("mh", "x.y")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	s.SetAttr("k", "v")
	s.Attrf("k", "%d", 1)
	s.Done()
	s.Fail(nil)
	if s.Open() || s.Duration() != 0 {
		t.Fatal("nil span misbehaved")
	}
	if tr.Spans() != nil || tr.FindSpans("x.") != nil || tr.SpanTree() != "" {
		t.Fatal("nil tracer returned spans")
	}
	if tr.StartChild(nil, "a", "b.c") != nil {
		t.Fatal("nil tracer StartChild")
	}
	tr.SetCapacity(4)
	if tr.Dropped() != 0 || tr.DroppedSpans() != 0 {
		t.Fatal("nil tracer counters")
	}
	if err := tr.WriteSpansJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRingEviction(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	tr.SetCapacity(3)
	for i := 0; i < 5; i++ {
		tr.Record("mh", "tick.n", "%d", i)
		tr.StartSpan("mh", "tick.span").Done()
	}
	ev := tr.Events()
	if len(ev) != 3 || tr.Dropped() != 2 {
		t.Fatalf("events = %d dropped = %d", len(ev), tr.Dropped())
	}
	if ev[0].Detail != "2" || ev[2].Detail != "4" {
		t.Fatalf("ring must keep newest oldest-first: %+v", ev)
	}
	sp := tr.Spans()
	if len(sp) != 3 || tr.DroppedSpans() != 2 {
		t.Fatalf("spans = %d dropped = %d", len(sp), tr.DroppedSpans())
	}
	if sp[0].ID != 3 || sp[2].ID != 5 {
		t.Fatalf("span ring order: %+v", sp)
	}
	// Find/Last must respect ring order too.
	if last, ok := tr.Last("tick."); !ok || last.Detail != "4" {
		t.Fatalf("Last on ring: %+v %v", last, ok)
	}
	// Shrinking an over-full tracer trims the oldest immediately.
	tr.SetCapacity(1)
	if len(tr.Events()) != 1 || tr.Dropped() != 4 {
		t.Fatalf("shrink: events=%d dropped=%d", len(tr.Events()), tr.Dropped())
	}
	// Back to unbounded: nothing else is evicted.
	tr.SetCapacity(0)
	tr.Record("mh", "tick.n", "after")
	if len(tr.Events()) != 2 || tr.Dropped() != 4 {
		t.Fatal("unbounded tracer must stop evicting")
	}
}

func TestPerLoopAssociation(t *testing.T) {
	loop := sim.New(1)
	if For(loop) != nil {
		t.Fatal("loop must start with no tracer")
	}
	tr := New(loop)
	if For(loop) != tr {
		t.Fatal("For must return the registered tracer")
	}
	// A second tracer on the same loop (a private experiment tracer) works
	// but does not steal the association.
	tr2 := New(loop)
	if tr2 == tr || For(loop) != tr {
		t.Fatal("first tracer must keep the association")
	}
	Release(loop)
	if For(loop) != nil {
		t.Fatal("Release must detach the loop")
	}
}

func TestFindSpansAndTree(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	h := tr.StartSpan("mh", "handoff.cold")
	tr.StartSpan("mh", "handoff.dhcp").Done()
	tr.StartSpan("mh", "pipeline.input").Done()
	h.Done()
	if got := len(tr.FindSpans("handoff.")); got != 2 {
		t.Fatalf("FindSpans(handoff.) = %d", got)
	}
	tree := tr.SpanTree("pipeline.")
	if strings.Contains(tree, "pipeline.input") {
		t.Fatalf("exclude prefix leaked into tree:\n%s", tree)
	}
	if !strings.Contains(tree, "handoff.cold") || !strings.Contains(tree, "  handoff.dhcp") {
		t.Fatalf("tree missing nesting:\n%s", tree)
	}
	counts := tr.SpanKindCounts()
	if len(counts) != 3 || counts[0].Kind != "handoff.cold" || counts[0].Count != 1 {
		t.Fatalf("kind counts: %+v", counts)
	}
}

func TestFlightRecorder(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	fr := NewFlightRecorder(tr, 8, 2)
	fr.TriggerOn("reg.timeout")
	fr.TriggerOnBurst("drop.noroute", 3, 100*time.Millisecond)

	loop.Schedule(time.Millisecond, func() { tr.Record("mh", "reg.request.sent", "") })
	loop.Schedule(2*time.Millisecond, func() { tr.Record("mh", "reg.timeout", "tries=3") })
	loop.Run()
	dumps := fr.Dumps()
	if len(dumps) != 1 || !strings.Contains(dumps[0].Reason, "reg.timeout") {
		t.Fatalf("dumps: %+v", dumps)
	}
	if len(dumps[0].Events) != 2 {
		t.Fatalf("dump must carry the ring contents: %d events", len(dumps[0].Events))
	}

	// One stale drop, then three within 100ms of one another: one dump.
	loop.Schedule(10*time.Millisecond, func() { tr.StartSpan("mh", "drop.noroute").Done() })
	loop.Schedule(200*time.Millisecond, func() { tr.StartSpan("mh", "drop.noroute").Done() })
	loop.Schedule(220*time.Millisecond, func() { tr.StartSpan("mh", "drop.noroute").Done() })
	loop.Schedule(240*time.Millisecond, func() { tr.StartSpan("mh", "drop.noroute").Done() })
	loop.Run()
	if len(fr.Dumps()) != 2 {
		t.Fatalf("burst did not fire: %d dumps", len(fr.Dumps()))
	}
	loop.Schedule(250*time.Millisecond, func() { tr.Record("mh", "reg.timeout", "") })
	loop.Run()
	if len(fr.Dumps()) != 2 || fr.Suppressed() != 1 {
		t.Fatalf("dump cap not enforced: %d dumps, %d suppressed", len(fr.Dumps()), fr.Suppressed())
	}

	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteJSON emitted invalid JSON")
	}

	// Nil recorder is inert.
	var nilFR *FlightRecorder
	nilFR.TriggerOn("x.y")
	nilFR.Trigger("manual")
	if nilFR.Dumps() != nil || nilFR.Suppressed() != 0 {
		t.Fatal("nil recorder misbehaved")
	}
	if NewFlightRecorder(nil, 8, 2) != nil {
		t.Fatal("recorder on nil tracer must be nil")
	}
}

func TestWriteSpansJSONLAndChromeTrace(t *testing.T) {
	build := func() (string, string) {
		loop := sim.New(7)
		tr := New(loop)
		defer Release(loop)
		loop.Schedule(time.Millisecond, func() {
			h := tr.StartSpan("mh", "handoff.cold")
			h.SetAttr("to", "eth0")
			loop.Schedule(2*time.Millisecond, func() {
				tr.Record("mh", "reg.request.sent", "to ha")
				tr.StartSpan("mh", "reg.attempt").Done()
				h.Done()
			})
		})
		loop.Run()
		var sj, cj bytes.Buffer
		if err := tr.WriteSpansJSONL(&sj); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChromeTrace(&cj); err != nil {
			t.Fatal(err)
		}
		return sj.String(), cj.String()
	}
	spans1, chrome1 := build()
	spans2, chrome2 := build()
	if spans1 != spans2 || chrome1 != chrome2 {
		t.Fatal("same-seed exports differ")
	}

	lines := strings.Split(strings.TrimRight(spans1, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("span JSONL lines = %d, want 2", len(lines))
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Kind != "handoff.cold" || s.Start != sim.Time(time.Millisecond) {
		t.Fatalf("bad span line: %+v", s)
	}

	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chrome1), &ct); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var phX, phI, phM int
	for _, e := range ct.TraceEvents {
		switch e["ph"] {
		case "X":
			phX++
		case "i":
			phI++
		case "M":
			phM++
		}
	}
	if phX != 2 || phI != 1 || phM < 2 {
		t.Fatalf("chrome trace shape: X=%d i=%d M=%d", phX, phI, phM)
	}
}

func TestResetClearsSpans(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	defer Release(loop)
	open := tr.StartSpan("mh", "op.pending")
	tr.StartSpan("mh", "op.done").Done()
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("Reset did not clear spans")
	}
	open.Done() // orphaned but harmless
	if len(tr.Spans()) != 0 {
		t.Fatal("orphaned span re-appeared after Reset")
	}
}
