// Package trace provides structured recording for experiments and
// debugging: flat timestamped events (kind, actor, free-form detail) and
// causal spans (timed operations with parents and attributes), both against
// the simulation clock. The registration time-line of the paper's Figure 7
// is reconstructed from events; the handoff-disruption observatory is built
// on spans.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"mosquitonet/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time `json:"at_ns"`
	Kind   string   `json:"kind"`  // e.g. "reg.request.sent", "handoff.start"
	Actor  string   `json:"actor"` // host name
	Detail string   `json:"detail,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-12s %-28s %s", e.At, e.Actor, e.Kind, e.Detail)
}

// Tracer records events and spans against a simulation clock. A nil Tracer
// is valid and records nothing, so call sites never need nil checks.
//
// A Tracer is unbounded by default; SetCapacity turns both stores into
// rings with deterministic oldest-first eviction, which is what keeps an
// always-on flight recorder affordable on long runs.
type Tracer struct {
	loop *sim.Loop

	cap     int // 0 = unbounded; otherwise ring capacity for events and spans
	events  []Event
	start   int // ring read position when len(events) == cap
	dropped uint64

	spans        []*Span
	spanStart    int
	droppedSpans uint64
	nextSpanID   uint64
	active       map[string][]*Span // per-actor stacks of open spans

	// Hook, if set, observes every event as it is recorded.
	Hook func(Event)
	// SpanHook, if set, observes every span as it is closed.
	SpanHook func(Span)
}

// loopTracers associates loops with tracers so deep layers (stack drops,
// DHCP, tunnels, link devices) can record spans without threading a Tracer
// through every constructor, mirroring metrics.Enable/For. Keyed by *Loop,
// entries are created under New and dropped by Release; each loop's tracer
// is only ever used from that loop's goroutine, so sharded runs stay
// deterministic.
var loopTracers sync.Map //lint:allow nosharedstate per-loop registry keyed by *sim.Loop, same pattern as metrics

// New creates a tracer on the given clock and associates it with the loop
// for For lookups. The first tracer created on a loop keeps the
// association; later tracers (e.g. a private tracer for one experiment
// fleet) still work but are not discoverable via For.
func New(loop *sim.Loop) *Tracer {
	t := &Tracer{loop: loop}
	loopTracers.LoadOrStore(loop, t)
	return t
}

// For returns the tracer associated with the loop, or nil (a valid,
// no-op tracer) when tracing is not enabled for it.
func For(loop *sim.Loop) *Tracer {
	if v, ok := loopTracers.Load(loop); ok {
		return v.(*Tracer)
	}
	return nil
}

// Release drops the loop's tracer association. Call when discarding a loop
// so the registry does not retain it.
func Release(loop *sim.Loop) { loopTracers.Delete(loop) }

// SetCapacity bounds the tracer to retain at most n events and n spans,
// evicting oldest-first (deterministically — eviction depends only on the
// record sequence). If more than n are already retained, the oldest are
// discarded now. n <= 0 restores unbounded growth.
func (t *Tracer) SetCapacity(n int) {
	if t == nil {
		return
	}
	ev := t.ordered()
	sp := t.orderedSpans()
	if n > 0 {
		if excess := len(ev) - n; excess > 0 {
			t.dropped += uint64(excess)
			ev = ev[excess:]
		}
		if excess := len(sp) - n; excess > 0 {
			t.droppedSpans += uint64(excess)
			sp = sp[excess:]
		}
	}
	t.events = append([]Event(nil), ev...)
	t.spans = append([]*Span(nil), sp...)
	t.start, t.spanStart = 0, 0
	if n <= 0 {
		n = 0
	}
	t.cap = n
}

// Capacity returns the ring capacity (0 = unbounded).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Record appends an event. Detail follows fmt.Sprintf conventions.
func (t *Tracer) Record(actor, kind, format string, args ...any) {
	if t == nil {
		return
	}
	e := Event{At: t.loop.Now(), Kind: kind, Actor: actor, Detail: fmt.Sprintf(format, args...)}
	if t.cap > 0 && len(t.events) == t.cap {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.cap
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	if t.Hook != nil {
		t.Hook(e)
	}
}

// ordered returns the retained events oldest-first.
func (t *Tracer) ordered() []Event {
	if t.start == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Events returns all retained events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return append([]Event(nil), t.ordered()...)
}

// Find returns events whose kind has the given prefix.
func (t *Tracer) Find(kindPrefix string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.ordered() {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event with the given kind prefix.
func (t *Tracer) Last(kindPrefix string) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	ev := t.ordered()
	for i := len(ev) - 1; i >= 0; i-- {
		if strings.HasPrefix(ev[i].Kind, kindPrefix) {
			return ev[i], true
		}
	}
	return Event{}, false
}

// Filter returns a new detached Tracer holding only the events whose kind
// matches one of the given prefixes (all events when none are given),
// preserving order. The result shares the parent's clock, so further
// Records work, but it starts with its own event slice — useful for
// exporting one protocol's timeline (e.g. "reg.", "addrswitch.") without
// disturbing the full trace.
func (t *Tracer) Filter(kindPrefixes ...string) *Tracer {
	if t == nil {
		return nil
	}
	out := &Tracer{loop: t.loop}
	for _, e := range t.ordered() {
		if len(kindPrefixes) == 0 {
			out.events = append(out.events, e)
			continue
		}
		for _, p := range kindPrefixes {
			if strings.HasPrefix(e.Kind, p) {
				out.events = append(out.events, e)
				break
			}
		}
	}
	return out
}

// WriteJSONL writes the recorded events as one JSON object per line, the
// machine-readable export external tooling (e.g. a Figure 7 timeline
// plotter) consumes. Spans are exported separately (WriteSpansJSONL,
// WriteChromeTrace), so this stream's format is unchanged by span
// recording.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.ordered() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards recorded events and spans (between experiment
// iterations). Open spans are orphaned: their Done still runs but they are
// no longer retained. Eviction counters are preserved.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
	t.spans = t.spans[:0]
	t.start, t.spanStart = 0, 0
	t.active = nil
}

// String renders the full trace, one event per line.
func (t *Tracer) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.ordered() {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}
