// Package trace provides structured event recording for experiments and
// debugging: timestamped events with a kind, an actor, and free-form
// detail, filterable after the fact. The registration time-line of the
// paper's Figure 7 is reconstructed from these events.
package trace

import (
	"fmt"
	"strings"

	"mosquitonet/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time
	Kind   string // e.g. "reg.request.sent", "handoff.start"
	Actor  string // host name
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-12s %-28s %s", e.At, e.Actor, e.Kind, e.Detail)
}

// Tracer records events against a simulation clock. A nil Tracer is valid
// and records nothing, so call sites never need nil checks.
type Tracer struct {
	loop   *sim.Loop
	events []Event
	// Hook, if set, observes every event as it is recorded.
	Hook func(Event)
}

// New creates a tracer on the given clock.
func New(loop *sim.Loop) *Tracer { return &Tracer{loop: loop} }

// Record appends an event. Detail follows fmt.Sprintf conventions.
func (t *Tracer) Record(actor, kind, format string, args ...any) {
	if t == nil {
		return
	}
	e := Event{At: t.loop.Now(), Kind: kind, Actor: actor, Detail: fmt.Sprintf(format, args...)}
	t.events = append(t.events, e)
	if t.Hook != nil {
		t.Hook(e)
	}
}

// Events returns all recorded events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return append([]Event(nil), t.events...)
}

// Find returns events whose kind has the given prefix.
func (t *Tracer) Find(kindPrefix string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event with the given kind prefix.
func (t *Tracer) Last(kindPrefix string) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	for i := len(t.events) - 1; i >= 0; i-- {
		if strings.HasPrefix(t.events[i].Kind, kindPrefix) {
			return t.events[i], true
		}
	}
	return Event{}, false
}

// Reset discards recorded events (between experiment iterations).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
}

// String renders the full trace, one event per line.
func (t *Tracer) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.events {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}
