// Package trace provides structured event recording for experiments and
// debugging: timestamped events with a kind, an actor, and free-form
// detail, filterable after the fact. The registration time-line of the
// paper's Figure 7 is reconstructed from these events.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mosquitonet/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	At     sim.Time `json:"at_ns"`
	Kind   string   `json:"kind"`  // e.g. "reg.request.sent", "handoff.start"
	Actor  string   `json:"actor"` // host name
	Detail string   `json:"detail,omitempty"`
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-12s %-28s %s", e.At, e.Actor, e.Kind, e.Detail)
}

// Tracer records events against a simulation clock. A nil Tracer is valid
// and records nothing, so call sites never need nil checks.
type Tracer struct {
	loop   *sim.Loop
	events []Event
	// Hook, if set, observes every event as it is recorded.
	Hook func(Event)
}

// New creates a tracer on the given clock.
func New(loop *sim.Loop) *Tracer { return &Tracer{loop: loop} }

// Record appends an event. Detail follows fmt.Sprintf conventions.
func (t *Tracer) Record(actor, kind, format string, args ...any) {
	if t == nil {
		return
	}
	e := Event{At: t.loop.Now(), Kind: kind, Actor: actor, Detail: fmt.Sprintf(format, args...)}
	t.events = append(t.events, e)
	if t.Hook != nil {
		t.Hook(e)
	}
}

// Events returns all recorded events in order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return append([]Event(nil), t.events...)
}

// Find returns events whose kind has the given prefix.
func (t *Tracer) Find(kindPrefix string) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if strings.HasPrefix(e.Kind, kindPrefix) {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event with the given kind prefix.
func (t *Tracer) Last(kindPrefix string) (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	for i := len(t.events) - 1; i >= 0; i-- {
		if strings.HasPrefix(t.events[i].Kind, kindPrefix) {
			return t.events[i], true
		}
	}
	return Event{}, false
}

// Filter returns a new detached Tracer holding only the events whose kind
// matches one of the given prefixes (all events when none are given),
// preserving order. The result shares the parent's clock, so further
// Records work, but it starts with its own event slice — useful for
// exporting one protocol's timeline (e.g. "reg.", "addrswitch.") without
// disturbing the full trace.
func (t *Tracer) Filter(kindPrefixes ...string) *Tracer {
	if t == nil {
		return nil
	}
	out := &Tracer{loop: t.loop}
	for _, e := range t.events {
		if len(kindPrefixes) == 0 {
			out.events = append(out.events, e)
			continue
		}
		for _, p := range kindPrefixes {
			if strings.HasPrefix(e.Kind, p) {
				out.events = append(out.events, e)
				break
			}
		}
	}
	return out
}

// WriteJSONL writes the recorded events as one JSON object per line, the
// machine-readable export external tooling (e.g. a Figure 7 timeline
// plotter) consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Reset discards recorded events (between experiment iterations).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.events = t.events[:0]
}

// String renders the full trace, one event per line.
func (t *Tracer) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range t.events {
		fmt.Fprintln(&b, e)
	}
	return b.String()
}
