package trace

import (
	"strings"
	"testing"
	"time"

	"mosquitonet/internal/sim"
)

func TestRecordAndFind(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	loop.Schedule(time.Millisecond, func() { tr.Record("mh", "reg.request.sent", "to %s", "ha") })
	loop.Schedule(2*time.Millisecond, func() { tr.Record("ha", "reg.reply.sent", "ok") })
	loop.Schedule(3*time.Millisecond, func() { tr.Record("mh", "reg.reply.received", "") })
	loop.Run()

	all := tr.Events()
	if len(all) != 3 {
		t.Fatalf("events = %d", len(all))
	}
	if all[0].At != sim.Time(time.Millisecond) || all[0].Actor != "mh" {
		t.Fatalf("first event: %+v", all[0])
	}
	if all[0].Detail != "to ha" {
		t.Fatalf("detail: %q", all[0].Detail)
	}

	reg := tr.Find("reg.")
	if len(reg) != 3 {
		t.Fatalf("Find(reg.) = %d", len(reg))
	}
	replies := tr.Find("reg.reply")
	if len(replies) != 2 {
		t.Fatalf("Find(reg.reply) = %d", len(replies))
	}

	last, ok := tr.Last("reg.")
	if !ok || last.Kind != "reg.reply.received" {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	if _, ok := tr.Last("nope"); ok {
		t.Fatal("Last found a nonexistent kind")
	}
}

func TestHook(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	var seen []Event
	tr.Hook = func(e Event) { seen = append(seen, e) }
	tr.Record("x", "k", "d")
	if len(seen) != 1 || seen[0].Kind != "k" {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestReset(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	tr.Record("x", "k", "")
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("x", "k", "") // must not panic
	if tr.Events() != nil || tr.String() != "" {
		t.Fatal("nil tracer misbehaved")
	}
	if _, ok := tr.Last("k"); ok {
		t.Fatal("nil tracer found events")
	}
	if tr.Find("k") != nil {
		t.Fatal("nil tracer found events")
	}
	tr.Reset()
}

func TestString(t *testing.T) {
	loop := sim.New(1)
	tr := New(loop)
	tr.Record("mh", "handoff.start", "eth0 -> strip0")
	s := tr.String()
	if !strings.Contains(s, "handoff.start") || !strings.Contains(s, "eth0 -> strip0") {
		t.Fatalf("String = %q", s)
	}
}
