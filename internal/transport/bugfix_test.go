package transport

import (
	"bytes"
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/stack"
)

// Regression tests for the three transport bugs the application-layer
// workloads surfaced: the zero-window deadlock, the UDP wildcard binding
// masked by a handler-less exact bind, and the RST refusal field shapes.

// TestZeroWindowProbeRecovers models a stalled reader: the receiver
// advertises a zero window while the sender has queued data and nothing in
// flight. Pre-fix, trySend had nothing in flight so armTimer never armed
// and the connection hung forever — even after the window reopened,
// because the reopening is only discoverable by probing. The persist timer
// must probe with backoff and resume transmission once a probe's ACK
// carries the reopened window.
func TestZeroWindowProbeRecovers(t *testing.T) {
	p := newPair(t, link.Ethernet(), 3)
	c, srv := establish(t, p, 80)
	var rcvd bytes.Buffer
	srv.OnData = func(b []byte) { rcvd.Write(b) }

	// Drain one exchange so both sides settle, then the receiver's
	// application stalls: window zero.
	c.Write([]byte("warmup"))
	p.loop.RunFor(time.Second)
	srv.SetAdvertisedWindow(0)
	// The ACK for this write reports the zero window; afterwards the
	// sender has queued data, nothing in flight, and a closed window.
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	c.Write(data[:100])
	p.loop.RunFor(2 * time.Second)
	c.Write(data[100:])
	if got := c.Unacked(); got != 0 && c.stats.ZeroWndProbes == 0 {
		// Not fatal — just documents the stall precondition.
		t.Logf("pre-reopen: unacked=%d probes=%d", got, c.stats.ZeroWndProbes)
	}

	// Window stays shut long enough for several backed-off probes.
	p.loop.RunFor(10 * time.Second)
	if c.stats.ZeroWndProbes == 0 {
		t.Fatal("no zero-window probes sent while the peer window was closed")
	}
	if rcvd.Len() >= 6+len(data) {
		t.Fatal("data delivered through a zero window?")
	}

	// The reader wakes up. No window-update segment is sent — the reopen
	// must be discovered by the sender's next persist probe.
	srv.SetAdvertisedWindow(recvWindow)
	p.loop.RunFor(3 * time.Minute) // probes back off toward maxRTO
	want := append([]byte("warmup"), data...)
	if !bytes.Equal(rcvd.Bytes(), want) {
		t.Fatalf("after window reopen: delivered %d of %d bytes", rcvd.Len(), len(want))
	}
	if c.Unacked() != 0 {
		t.Fatalf("unacked bytes remain: %d", c.Unacked())
	}
	if c.persistTimer.Active() {
		t.Fatal("persist timer still armed after the window reopened")
	}
}

// TestZeroWindowProbeStopsOnTeardown pins the audit half of the fix: a
// connection torn down mid-probe must cancel its persist timer alongside
// the retransmission timer.
func TestZeroWindowProbeStopsOnTeardown(t *testing.T) {
	p := newPair(t, link.Ethernet(), 4)
	c, srv := establish(t, p, 80)
	srv.OnData = func([]byte) {}
	c.Write([]byte("w"))
	p.loop.RunFor(time.Second)
	srv.SetAdvertisedWindow(0)
	c.Write([]byte("x"))
	p.loop.RunFor(time.Second)
	c.Write(make([]byte, 2000))
	p.loop.RunFor(5 * time.Second)
	if !c.persistTimer.Active() {
		t.Fatal("persist timer not armed against a zero window")
	}
	srv.Abort()
	p.loop.RunFor(time.Second)
	if c.State() != StateClosed {
		t.Fatalf("state %v after peer RST", c.State())
	}
	if c.persistTimer.Active() || c.rtxTimer.Active() {
		t.Fatal("timers still armed after teardown")
	}
	probes := c.stats.ZeroWndProbes
	p.loop.RunFor(5 * time.Minute)
	if c.stats.ZeroWndProbes != probes {
		t.Fatal("closed connection kept probing")
	}
}

// TestTeardownCancelsRetransmit pins that a closed connection never fires
// a stale retransmission: tear down (via peer RST) while data is
// outstanding and the RTO timer armed, then verify no further
// transmissions happen.
func TestTeardownCancelsRetransmit(t *testing.T) {
	p := newPair(t, link.Ethernet(), 6)
	c, srv := establish(t, p, 80)
	srv.OnData = func([]byte) {}

	// Take the receiver down so writes stay in flight and the RTO arms.
	dev := p.b.Host().IfaceByName("eth0").Device()
	dev.BringDown()
	c.Write(make([]byte, 3000))
	p.loop.RunFor(100 * time.Millisecond)
	if !c.rtxTimer.Active() {
		t.Fatal("RTO timer not armed with data in flight")
	}
	c.Abort()
	if c.rtxTimer.Active() || c.persistTimer.Active() {
		t.Fatal("timers survived teardown")
	}
	retransmits := c.stats.Retransmits
	p.loop.RunFor(5 * time.Minute)
	if c.stats.Retransmits != retransmits {
		t.Fatalf("closed connection retransmitted: %d -> %d", retransmits, c.stats.Retransmits)
	}
}

// TestUDPWildcardBehindSendOnlyExactBind pins the demux fix: an exact
// (addr, port) binding with a nil handler — a send-only socket, exactly
// what probes and clients create — must not swallow datagrams that a
// wildcard binding on the same port could deliver.
func TestUDPWildcardBehindSendOnlyExactBind(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	// Send-only exact bind on (bAddr, 99), wildcard receiver on :99.
	sendOnly, err := p.b.UDP(p.bAddr, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	wild, err := p.b.UDP(ip.Unspecified, 99, func(Datagram) { hits++ })
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := p.a.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(p.bAddr, 99, []byte("x"))
	p.loop.RunFor(time.Second)
	if hits != 1 {
		t.Fatalf("wildcard handler hits = %d, want 1", hits)
	}
	if wild.Received != 1 || sendOnly.Received != 0 {
		t.Fatalf("counters wild=%d exact=%d", wild.Received, sendOnly.Received)
	}
	if n := p.b.StatsSnapshot().UDPNoSocket; n != 0 {
		t.Fatalf("UDPNoSocket = %d; datagram swallowed by the send-only bind", n)
	}
}

// rstCatcher runs a raw TCP-segment sniffer in place of a transport stack
// so tests can send hand-crafted segments and inspect the peer's replies.
type rstCatcher struct {
	host *stack.Host
	addr ip.Addr
	got  []ip.TCPHeader
}

func newRSTCatcher(h *stack.Host, addr ip.Addr) *rstCatcher {
	rc := &rstCatcher{host: h, addr: addr}
	h.RegisterHandler(ip.ProtoTCP, func(ifc *stack.Iface, pkt *ip.Packet) {
		hdr, _, err := ip.UnmarshalTCP(pkt.Src, pkt.Dst, pkt.Payload)
		if err != nil {
			return
		}
		rc.got = append(rc.got, hdr)
	})
	return rc
}

// inject sends a crafted segment from the catcher's host to dst.
func (rc *rstCatcher) inject(dst ip.Addr, h ip.TCPHeader, payload []byte) {
	seg := ip.MarshalTCP(rc.addr, dst, h, payload)
	rc.host.Output(&ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoTCP, Src: rc.addr, Dst: dst},
		Payload: seg,
	})
}

// TestRSTRefusalFieldShapes pins the RFC 793 refusal conventions. The old
// code stamped Seq: h.Ack and RST|ACK unconditionally, which for an
// ACK-less segment produced Seq=0 *and* an ACK-flagged RST acknowledging
// h.Seq+1 regardless of segment length.
func TestRSTRefusalFieldShapes(t *testing.T) {
	p := newPair(t, link.Ethernet(), 9)
	// Replace a's transport TCP handler with the sniffer; a keeps its IP
	// stack but now sees raw refusals from b.
	rc := newRSTCatcher(p.a.Host(), p.aAddr)

	check := func(name string, send ip.TCPHeader, payload []byte, want ip.TCPHeader) {
		t.Helper()
		rc.got = nil
		rc.inject(p.bAddr, send, payload)
		p.loop.RunFor(time.Second)
		if len(rc.got) != 1 {
			t.Fatalf("%s: got %d replies, want 1", name, len(rc.got))
		}
		g := rc.got[0]
		if g.Flags != want.Flags || g.Seq != want.Seq || g.Ack != want.Ack {
			t.Errorf("%s: RST seq=%d ack=%d flags=%s, want seq=%d ack=%d flags=%s",
				name, g.Seq, g.Ack, g.FlagString(), want.Seq, want.Ack, want.FlagString())
		}
	}

	// A bare SYN to a closed port: SEG.LEN=1 (the SYN slot), so the RST
	// acknowledges seq+1 with Seq=0 and the ACK flag set.
	check("bare SYN",
		ip.TCPHeader{SrcPort: 5000, DstPort: 4444, Seq: 1000, Flags: ip.TCPSyn, Window: 100},
		nil,
		ip.TCPHeader{Flags: ip.TCPRst | ip.TCPAck, Seq: 0, Ack: 1001})

	// ACK-less data to a closed port: the RST acknowledges seq+len.
	check("ACK-less data",
		ip.TCPHeader{SrcPort: 5001, DstPort: 4444, Seq: 2000, Flags: ip.TCPPsh, Window: 100},
		[]byte("hello"),
		ip.TCPHeader{Flags: ip.TCPRst | ip.TCPAck, Seq: 0, Ack: 2005})

	// A stray ACK to a closed port: the RST takes its Seq from the
	// segment's Ack and carries no ACK flag.
	check("stray ACK",
		ip.TCPHeader{SrcPort: 5002, DstPort: 4444, Seq: 3000, Ack: 7777, Flags: ip.TCPAck, Window: 100},
		nil,
		ip.TCPHeader{Flags: ip.TCPRst, Seq: 7777, Ack: 0})

	// An ACK-less FIN: the FIN slot counts toward SEG.LEN too.
	check("ACK-less FIN",
		ip.TCPHeader{SrcPort: 5003, DstPort: 4444, Seq: 4000, Flags: ip.TCPFin, Window: 100},
		nil,
		ip.TCPHeader{Flags: ip.TCPRst | ip.TCPAck, Seq: 0, Ack: 4001})
}
