package transport

import (
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
)

// Stream parameters. There is no congestion control: the paper's
// experiments are about handoff disruption, not bulk-transfer dynamics,
// and a fixed window keeps behaviour analyzable. Retransmission and RTT
// estimation follow the usual (Jacobson/Karn) rules so streams survive the
// loss bursts a handoff causes.
const (
	MSS            = 1000
	recvWindow     = 16384
	initialRTO     = time.Second
	minRTO         = 300 * time.Millisecond
	maxRTO         = 60 * time.Second
	maxSynRetries  = 6
	maxDataRetries = 10
	oooLimit       = 64 // out-of-order segments buffered per connection

	// rtoLaneGranularity buckets RTO timers; tiny against minRTO (300ms).
	rtoLaneGranularity = time.Millisecond
)

// ConnState is a stream connection's state.
type ConnState int

// Connection states (a condensed TCP state machine: FinSent covers
// FIN-WAIT-1/LAST-ACK, and remote closure is tracked separately).
const (
	StateSynSent ConnState = iota
	StateSynRcvd
	StateEstablished
	StateFinSent
	StateClosed
)

func (s ConnState) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateFinSent:
		return "fin-sent"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ConnStats counts a connection's activity.
type ConnStats struct {
	BytesSent     uint64 // payload bytes transmitted (including retransmits)
	BytesAcked    uint64
	BytesReceived uint64
	Retransmits   uint64
	DupAcksSent   uint64
	ZeroWndProbes uint64 // persist-timer probes sent against a closed peer window
}

// Conn is a reliable byte-stream connection. Callbacks fire from the
// simulation loop; install them before traffic can arrive.
type Conn struct {
	stk   *Stack
	key   connKey
	state ConnState

	// Callbacks.
	OnData        func([]byte) // in-order received payload
	OnEstablished func()
	OnRemoteClose func()
	OnError       func(error)

	// Send state.
	iss      uint32
	sndUna   uint32 // oldest unacknowledged sequence
	sndNxt   uint32 // next sequence to send
	peerWnd  uint16
	sndBuf   []byte // bytes [sndUna+pendingSynFin adjustments ...): unacked + unsent
	sndInUse int    // bytes of sndBuf already transmitted (unacked)
	closing  bool   // Close() called; send FIN once buffer drains
	finSent  bool
	finAcked bool

	// Receive state. ooo holds out-of-order segments awaiting the gap to
	// fill (bounded by oooLimit entries).
	rcvNxt       uint32
	remoteClosed bool
	ooo          map[uint32][]byte

	// Fast retransmit: three duplicate ACKs for sndUna trigger an
	// immediate retransmission without waiting out the RTO.
	dupAcks int

	// recovering marks a timeout-recovery episode: after an RTO
	// retransmission, each ACK that advances sndUna immediately
	// retransmits the next outstanding segment (ACK-clocked go-back-N)
	// instead of waiting out the backed-off RTO again. A handoff blackout
	// can lose a whole window; without this, recovery would crawl at one
	// segment per RTO.
	recovering bool

	// Persist timer (zero-window probing). When the peer advertises a
	// zero window with data queued and nothing in flight, the RTO timer
	// never arms — nothing is outstanding — so without probing the
	// connection would deadlock forever: the window-update ACK that
	// reopens the window carries no data and is sent unreliably. The
	// persist timer sends a one-byte probe below sndUna (front-trimmed by
	// the receiver as a pure duplicate) to elicit an ACK carrying the
	// current window, backing off like an RTO but never giving up, per
	// the classic TCP persist behaviour.
	persistTimer   sim.LaneTimer
	persistBackoff time.Duration

	// advWnd is the receive window advertised on outgoing segments. It
	// defaults to recvWindow; an application throttling its consumption
	// (or a test modelling a stalled reader) lowers it with
	// SetAdvertisedWindow, possibly to zero.
	advWnd uint16

	// Retransmission. The RTO timer lives on a bucketed lane: it is
	// re-armed on every ACK and almost never fires, so sharing heap
	// events across connections keeps the per-ACK cost flat; the
	// sub-millisecond rounding is noise against RTOs of hundreds of ms.
	rtxTimer   sim.LaneTimer
	rto        time.Duration
	srtt       time.Duration
	rttvar     time.Duration
	retries    int
	sampleSeq  uint32   // sequence whose RTT is being timed
	sampleTime sim.Time // send time of sampleSeq
	sampling   bool

	stats ConnStats
}

// Listener accepts incoming stream connections on a bound address/port.
type Listener struct {
	stk      *Stack
	key      bindKey
	onAccept func(*Conn)
	closed   bool
}

// Listen binds a listener. A zero bound address accepts connections to any
// local address, including the home address on a mobile host.
func (s *Stack) Listen(bound ip.Addr, port uint16, onAccept func(*Conn)) (*Listener, error) {
	k := bindKey{bound, port}
	if s.listeners[k] != nil {
		return nil, ErrPortInUse
	}
	l := &Listener{stk: s, key: k, onAccept: onAccept}
	if s.listeners == nil { // lazy: most fleet hosts never listen
		s.listeners = make(map[bindKey]*Listener)
	}
	s.listeners[k] = l
	return l, nil
}

// Close stops accepting new connections (existing ones are unaffected).
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		delete(l.stk.listeners, l.key)
	}
}

// Connect opens a connection to (dst, dport), bound locally to bound (or
// the route lookup's recommended source when unspecified — the home
// address on a mobile host, making the connection move-proof).
func (s *Stack) Connect(bound, dst ip.Addr, dport uint16) (*Conn, error) {
	src, err := s.resolveSrc(dst, bound)
	if err != nil {
		return nil, err
	}
	lport, err := s.ephemeralPort(src)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		stk:     s,
		key:     connKey{laddr: src, lport: lport, raddr: dst, rport: dport},
		state:   StateSynSent,
		iss:     s.loop.Rand().Uint32(),
		rto:     initialRTO,
		peerWnd: recvWindow,
		advWnd:  recvWindow,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1 // SYN consumes one sequence number
	if s.conns == nil {
		s.conns = make(map[connKey]*Conn)
	}
	s.conns[c.key] = c
	c.sendSegment(ip.TCPSyn, c.iss, 0, nil)
	c.armTimer()
	return c, nil
}

// State returns the connection state.
func (c *Conn) State() ConnState { return c.state }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.state == StateEstablished || c.state == StateFinSent }

// Stats returns a snapshot of the counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// LocalAddr returns the connection's local (bound) address and port.
func (c *Conn) LocalAddr() (ip.Addr, uint16) { return c.key.laddr, c.key.lport }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (ip.Addr, uint16) { return c.key.raddr, c.key.rport }

// Unacked returns the number of bytes sent but not yet acknowledged.
func (c *Conn) Unacked() int { return c.sndInUse }

// Write queues data for reliable delivery.
func (c *Conn) Write(data []byte) error {
	if c.state == StateClosed {
		return ErrClosed
	}
	if c.closing {
		return ErrClosed
	}
	c.sndBuf = append(c.sndBuf, data...)
	c.trySend()
	return nil
}

// Close initiates an orderly shutdown: buffered data is delivered first,
// then a FIN.
func (c *Conn) Close() {
	if c.state == StateClosed || c.closing {
		return
	}
	c.closing = true
	c.trySend()
}

// Abort drops the connection immediately, sending a RST.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	c.sendSegment(ip.TCPRst, c.sndNxt, c.rcvNxt, nil)
	c.teardown(nil)
}

// teardown closes the connection and cancels both timers. Every path out
// of the connection table funnels through here, so a closed conn can never
// fire a stale retransmission or persist probe.
func (c *Conn) teardown(err error) {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	c.rtxTimer.Stop()
	c.persistTimer.Stop()
	delete(c.stk.conns, c.key)
	if err != nil && c.OnError != nil {
		c.OnError(err)
	}
}

// trySend transmits as much as the peer window allows, plus a FIN when
// closing with an empty buffer.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateFinSent {
		return
	}
	for c.sndInUse < len(c.sndBuf) {
		inflight := int(c.sndNxt - c.sndUna)
		if inflight >= int(c.peerWnd) {
			break
		}
		n := len(c.sndBuf) - c.sndInUse
		if n > MSS {
			n = MSS
		}
		if n > int(c.peerWnd)-inflight {
			n = int(c.peerWnd) - inflight
		}
		if n <= 0 {
			break
		}
		seg := c.sndBuf[c.sndInUse : c.sndInUse+n]
		seq := c.sndNxt
		c.sendSegment(ip.TCPAck|ip.TCPPsh, seq, c.rcvNxt, seg)
		c.stats.BytesSent += uint64(n)
		if !c.sampling {
			c.sampling = true
			c.sampleSeq = seq
			c.sampleTime = c.stk.loop.Now()
		}
		c.sndNxt += uint32(n)
		c.sndInUse += n
	}
	if c.closing && c.sndInUse == len(c.sndBuf) && !c.finSent && c.state == StateEstablished {
		c.finSent = true
		c.state = StateFinSent
		c.sendSegment(ip.TCPFin|ip.TCPAck, c.sndNxt, c.rcvNxt, nil)
		c.sndNxt++ // FIN consumes a sequence number
	}
	c.armTimer()
	// Zero-window deadlock guard: data is queued, nothing is in flight (so
	// the RTO timer stays unarmed), and the peer window is closed. Probe
	// until an ACK reopens it.
	if c.peerWnd == 0 && c.sndInUse < len(c.sndBuf) && c.sndNxt == c.sndUna &&
		!c.persistTimer.Active() {
		c.armPersist()
	}
}

// SetAdvertisedWindow changes the receive window stamped on this side's
// outgoing segments — the backpressure hook for an application that has
// stopped consuming. It takes effect on the next segment sent; a peer
// staring at a zero window rediscovers the reopened window through its
// persist probes.
func (c *Conn) SetAdvertisedWindow(w uint16) { c.advWnd = w }

// armPersist starts the persist timer. The first probe waits out the
// current RTO; subsequent probes back off exponentially to maxRTO and
// never give up — a zero window is flow control, not failure.
func (c *Conn) armPersist() {
	if c.persistBackoff == 0 {
		c.persistBackoff = c.rto
		if c.persistBackoff < minRTO {
			c.persistBackoff = minRTO
		}
	}
	c.persistTimer = c.stk.loop.Lane(rtoLaneGranularity).Schedule(c.persistBackoff, c.zeroWndProbe)
}

// zeroWndProbe sends one byte just below sndUna. The receiver front-trims
// it as a pure duplicate and answers with an ACK carrying its current
// window; segment()'s window-open path then resumes transmission.
func (c *Conn) zeroWndProbe() {
	if c.state != StateEstablished && c.state != StateFinSent {
		return
	}
	if c.peerWnd != 0 || c.sndInUse >= len(c.sndBuf) || c.sndNxt != c.sndUna {
		return
	}
	c.stats.ZeroWndProbes++
	var probe [1]byte
	c.sendSegment(ip.TCPAck, c.sndUna-1, c.rcvNxt, probe[:])
	c.persistBackoff *= 2
	if c.persistBackoff > maxRTO {
		c.persistBackoff = maxRTO
	}
	c.armPersist()
}

func (c *Conn) sendSegment(flags uint8, seq, ack uint32, payload []byte) {
	h := ip.TCPHeader{
		SrcPort: c.key.lport,
		DstPort: c.key.rport,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  c.advWnd,
	}
	seg := ip.MarshalTCP(c.key.laddr, c.key.raddr, h, payload)
	pkt := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoTCP, Src: c.key.laddr, Dst: c.key.raddr},
		Payload: seg,
	}
	c.stk.host.Output(pkt)
}

// armTimer (re)starts the retransmission timer if anything is in flight.
func (c *Conn) armTimer() {
	c.rtxTimer.Stop()
	inflight := c.sndNxt != c.sndUna
	if !inflight || c.state == StateClosed {
		return
	}
	c.rtxTimer = c.stk.loop.Lane(rtoLaneGranularity).Schedule(c.rto, c.retransmit)
}

func (c *Conn) retransmit() {
	c.retries++
	limit := maxDataRetries
	if c.state == StateSynSent || c.state == StateSynRcvd {
		limit = maxSynRetries
	}
	if c.retries > limit {
		c.teardown(ErrConnTimeout)
		return
	}
	c.stats.Retransmits++
	c.sampling = false // Karn: no RTT samples across retransmits
	switch c.state {
	case StateSynSent:
		c.sendSegment(ip.TCPSyn, c.iss, 0, nil)
	case StateSynRcvd:
		c.sendSegment(ip.TCPSyn|ip.TCPAck, c.iss, c.rcvNxt, nil)
	default:
		if c.sndInUse > 0 {
			c.recovering = true
			c.resendHead()
		} else if c.finSent && !c.finAcked {
			c.sendSegment(ip.TCPFin|ip.TCPAck, c.sndNxt-1, c.rcvNxt, nil)
		}
	}
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.armTimer()
}

// updateRTT feeds a round-trip sample into the Jacobson estimator.
func (c *Conn) updateRTT(sample time.Duration) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := sample - c.srtt
		if delta < 0 {
			delta = -delta
		}
		c.rttvar = (3*c.rttvar + delta) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.retries = 0
}

// RTO returns the current retransmission timeout (for tests and traces).
func (c *Conn) RTO() time.Duration { return c.rto }

// tcpInput demultiplexes a received TCP segment.
func (s *Stack) tcpInput(ifc *stack.Iface, pkt *ip.Packet) {
	h, payload, err := ip.UnmarshalTCP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		s.stats.TCPBadChecksum++
		return
	}
	s.stats.TCPSegments++
	key := connKey{laddr: pkt.Dst, lport: h.DstPort, raddr: pkt.Src, rport: h.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.segment(h, payload)
		//lint:allow dropaccounting segment delivered to the connection state machine, not dropped
		return
	}
	// New connection to a listener?
	if h.Flags&ip.TCPSyn != 0 && h.Flags&ip.TCPAck == 0 {
		l := s.listeners[bindKey{pkt.Dst, h.DstPort}]
		if l == nil {
			l = s.listeners[bindKey{ip.Unspecified, h.DstPort}]
		}
		if l != nil {
			c := &Conn{
				stk:     s,
				key:     key,
				state:   StateSynRcvd,
				iss:     s.loop.Rand().Uint32(),
				rto:     initialRTO,
				peerWnd: h.Window,
				advWnd:  recvWindow,
				rcvNxt:  h.Seq + 1,
			}
			c.sndUna = c.iss
			c.sndNxt = c.iss + 1
			if s.conns == nil {
				s.conns = make(map[connKey]*Conn)
			}
			s.conns[key] = c
			if l.onAccept != nil {
				l.onAccept(c)
			}
			c.sendSegment(ip.TCPSyn|ip.TCPAck, c.iss, c.rcvNxt, nil)
			c.armTimer()
			return
		}
	}
	s.stats.TCPNoConn++
	if h.Flags&ip.TCPRst == 0 {
		// Refuse with a RST addressed from the targeted address, shaped
		// per RFC 793 §3.4: a segment carrying an ACK is refused with
		// <SEQ=SEG.ACK><CTL=RST> (the peer validates the RST against its
		// own send sequence, so no ACK rides along); a segment without an
		// ACK — a bare SYN, or stray data to a closed port — is refused
		// with <SEQ=0><ACK=SEG.SEQ+SEG.LEN><CTL=RST,ACK>, where SEG.LEN
		// counts the SYN/FIN sequence slots. The old code stamped
		// Seq: h.Ack unconditionally, which for ACK-less segments is a
		// zero Seq on an ACK-flagged RST acknowledging the wrong edge.
		rst := ip.TCPHeader{SrcPort: h.DstPort, DstPort: h.SrcPort}
		if h.Flags&ip.TCPAck != 0 {
			rst.Seq = h.Ack
			rst.Flags = ip.TCPRst
		} else {
			segLen := uint32(len(payload))
			if h.Flags&ip.TCPSyn != 0 {
				segLen++
			}
			if h.Flags&ip.TCPFin != 0 {
				segLen++
			}
			rst.Ack = h.Seq + segLen
			rst.Flags = ip.TCPRst | ip.TCPAck
		}
		seg := ip.MarshalTCP(pkt.Dst, pkt.Src, rst, nil)
		s.host.Output(&ip.Packet{
			Header:  ip.Header{Protocol: ip.ProtoTCP, Src: pkt.Dst, Dst: pkt.Src},
			Payload: seg,
		})
	}
}

// segment runs the per-connection state machine on an arriving segment.
func (c *Conn) segment(h ip.TCPHeader, payload []byte) {
	if h.Flags&ip.TCPRst != 0 {
		c.teardown(ErrConnReset)
		return
	}
	windowOpened := c.peerWnd == 0 && h.Window != 0
	c.peerWnd = h.Window
	if windowOpened {
		// The peer's window reopened (via a probe's ACK or any other
		// segment): cancel persist probing and resume at the end of
		// segment processing, once the ACK and data paths have run.
		c.persistBackoff = 0
		c.persistTimer.Stop()
		defer func() {
			if c.state == StateEstablished || c.state == StateFinSent {
				c.trySend()
			}
		}()
	}
	finSeq := h.Seq + uint32(len(payload)) // where a FIN flag would sit

	switch c.state {
	case StateSynSent:
		if h.Flags&(ip.TCPSyn|ip.TCPAck) == ip.TCPSyn|ip.TCPAck && h.Ack == c.sndNxt {
			c.rcvNxt = h.Seq + 1
			c.sndUna = h.Ack
			c.state = StateEstablished
			c.retries = 0
			c.rtxTimer.Stop()
			c.sendSegment(ip.TCPAck, c.sndNxt, c.rcvNxt, nil)
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.trySend()
		}
		return
	case StateSynRcvd:
		if h.Flags&ip.TCPAck != 0 && h.Ack == c.sndNxt {
			c.sndUna = h.Ack
			c.state = StateEstablished
			c.retries = 0
			c.armTimer()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
		}
		// Fall through to process any data riding on the ACK.
	case StateClosed:
		return
	}
	if c.state == StateSynRcvd {
		return // handshake ACK not yet seen
	}

	// A retransmitted SYN-ACK means our handshake ACK was lost: repeat it.
	if h.Flags&ip.TCPSyn != 0 {
		c.sendACK()
		return
	}

	// ACK processing.
	if h.Flags&ip.TCPAck != 0 && h.Ack == c.sndUna && c.sndNxt != c.sndUna && len(payload) == 0 {
		// Duplicate ACK while data is outstanding.
		c.dupAcks++
		if c.dupAcks == 3 && c.sndInUse > 0 {
			c.stats.Retransmits++
			c.sampling = false
			c.resendHead()
		}
	}
	if h.Flags&ip.TCPAck != 0 && ip.SeqLess(c.sndUna, h.Ack) && ip.SeqLEQ(h.Ack, c.sndNxt) {
		c.dupAcks = 0
		acked := h.Ack - c.sndUna
		dataAcked := int(acked)
		if c.finSent && h.Ack == c.sndNxt {
			c.finAcked = true
			dataAcked-- // the FIN's sequence slot carries no data
		}
		if dataAcked > 0 {
			if dataAcked > c.sndInUse {
				dataAcked = c.sndInUse
			}
			c.sndBuf = c.sndBuf[dataAcked:]
			c.sndInUse -= dataAcked
			c.stats.BytesAcked += uint64(dataAcked)
		}
		c.sndUna = h.Ack
		if c.sampling && ip.SeqLess(c.sampleSeq, h.Ack) {
			c.sampling = false
			c.updateRTT(c.stk.loop.Now().Sub(c.sampleTime))
		}
		c.retries = 0
		if c.recovering {
			if c.sndInUse > 0 {
				// ACK-clocked recovery: the cumulative ACK tells us the
				// next outstanding segment is still missing; resend it now.
				c.stats.Retransmits++
				c.resendHead()
			} else {
				c.recovering = false
			}
		}
		c.armTimer()
		c.trySend()
	}

	// In-order data processing, with front-trim of partial duplicates.
	if len(payload) > 0 {
		if ip.SeqLess(h.Seq, c.rcvNxt) {
			overlap := c.rcvNxt - h.Seq
			if int(overlap) >= len(payload) {
				c.sendACK() // pure duplicate
				c.stats.DupAcksSent++
				payload = nil
			} else {
				payload = payload[overlap:]
				h.Seq = c.rcvNxt
			}
		}
		if len(payload) > 0 {
			if h.Seq == c.rcvNxt {
				c.consume(payload)
				c.drainOOO()
				c.sendACK()
			} else {
				// Out of order: buffer it and send a duplicate ACK so the
				// peer can fast-retransmit the gap.
				if c.ooo == nil {
					c.ooo = make(map[uint32][]byte)
				}
				if len(c.ooo) < oooLimit {
					c.ooo[h.Seq] = append([]byte(nil), payload...)
				}
				c.sendACK()
				c.stats.DupAcksSent++
			}
		}
	}

	// FIN processing (only when it arrives in order).
	if h.Flags&ip.TCPFin != 0 && finSeq == c.rcvNxt && !c.remoteClosed {
		c.rcvNxt++
		c.remoteClosed = true
		c.sendACK()
		if c.OnRemoteClose != nil {
			c.OnRemoteClose()
		}
		if !c.closing {
			c.Close() // echo the close (no half-open lingering)
		}
	}
	if c.remoteClosed && c.finSent && c.finAcked {
		c.teardown(nil)
	}
}

func (c *Conn) sendACK() {
	c.sendSegment(ip.TCPAck, c.sndNxt, c.rcvNxt, nil)
}

// resendHead retransmits the first outstanding segment.
func (c *Conn) resendHead() {
	n := c.sndInUse
	if n > MSS {
		n = MSS
	}
	c.sendSegment(ip.TCPAck|ip.TCPPsh, c.sndUna, c.rcvNxt, c.sndBuf[:n])
	c.stats.BytesSent += uint64(n)
}

// consume delivers in-order payload to the application.
func (c *Conn) consume(payload []byte) {
	c.rcvNxt += uint32(len(payload))
	c.stats.BytesReceived += uint64(len(payload))
	if c.OnData != nil {
		c.OnData(payload)
	}
}

// drainOOO delivers any buffered segments that have become contiguous.
func (c *Conn) drainOOO() {
	for len(c.ooo) > 0 {
		seg, ok := c.ooo[c.rcvNxt]
		if ok {
			delete(c.ooo, c.rcvNxt)
			c.consume(seg)
			continue
		}
		// Discard stale (already-covered) buffered segments.
		progressed := false
		for seq, seg := range c.ooo {
			if ip.SeqLEQ(seq+uint32(len(seg)), c.rcvNxt) {
				delete(c.ooo, seq)
				progressed = true
			} else if ip.SeqLess(seq, c.rcvNxt) {
				// Partial overlap: trim and retry.
				delete(c.ooo, seq)
				c.ooo[c.rcvNxt] = seg[c.rcvNxt-seq:]
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}
