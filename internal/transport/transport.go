// Package transport implements the simulator's transport layer on top of
// the host stack: UDP sockets and a TCP-like reliable byte stream
// ("Stream") with handshake, cumulative acknowledgments, retransmission
// with RTT estimation, and orderly close.
//
// The part that matters for mobility is binding. A socket bound to the
// unspecified address asks the (possibly mobility-overridden) route lookup
// for its source address at send time — under MosquitoNet this yields the
// home address and the packet is subject to mobile IP, so connections
// survive moves without the application noticing. A socket bound to a
// specific interface address is in the mobile host's "local role" and
// bypasses mobility entirely. This mirrors the paper's two packet classes.
package transport

import (
	"errors"
	"fmt"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
)

// Stack multiplexes UDP sockets and stream connections over one host.
type Stack struct {
	host *stack.Host
	loop *sim.Loop

	udp       map[bindKey]*UDPSocket
	conns     map[connKey]*Conn
	listeners map[bindKey]*Listener

	portSeq uint16
	stats   Stats
}

// Stats counts transport-layer activity.
type Stats struct {
	UDPDelivered   uint64
	UDPNoSocket    uint64
	UDPBadChecksum uint64
	TCPSegments    uint64
	TCPNoConn      uint64
	TCPBadChecksum uint64
}

type bindKey struct {
	addr ip.Addr
	port uint16
}

type connKey struct {
	laddr ip.Addr
	lport uint16
	raddr ip.Addr
	rport uint16
}

// Transport errors.
var (
	ErrPortInUse   = errors.New("transport: address already in use")
	ErrClosed      = errors.New("transport: socket closed")
	ErrNoPorts     = errors.New("transport: ephemeral ports exhausted")
	ErrConnReset   = errors.New("transport: connection reset")
	ErrConnTimeout = errors.New("transport: connection timed out")
)

// NewStack attaches a transport stack to h, registering its UDP and TCP
// protocol handlers.
func NewStack(h *stack.Host) *Stack {
	s := &Stack{
		host:    h,
		loop:    h.Loop(),
		portSeq: 32768,
	}
	h.RegisterHandler(ip.ProtoUDP, s.udpInput)
	h.RegisterHandler(ip.ProtoTCP, s.tcpInput)
	return s
}

// Host returns the underlying host.
func (s *Stack) Host() *stack.Host { return s.host }

// StatsSnapshot returns a copy of the counters.
func (s *Stack) StatsSnapshot() Stats { return s.stats }

// ephemeralPort allocates an unused port for the given address scope,
// checking both UDP and TCP namespaces for simplicity.
func (s *Stack) ephemeralPort(addr ip.Addr) (uint16, error) {
	for i := 0; i < 65536; i++ {
		s.portSeq++
		if s.portSeq < 32768 {
			s.portSeq = 32768
		}
		k := bindKey{addr, s.portSeq}
		w := bindKey{ip.Unspecified, s.portSeq}
		if s.udp[k] == nil && s.udp[w] == nil && s.listeners[k] == nil && s.listeners[w] == nil {
			return s.portSeq, nil
		}
	}
	return 0, ErrNoPorts
}

// resolveSrc asks the host's route lookup for the source address a send
// with the given binding will use — the transport-layer call into
// ip_rt_route() the paper describes, needed here to compute pseudo-header
// checksums.
func (s *Stack) resolveSrc(dst, bound ip.Addr) (ip.Addr, error) {
	dec, err := s.host.RouteLookup(dst, bound)
	if err != nil {
		return ip.Addr{}, err
	}
	if !bound.IsUnspecified() {
		return bound, nil
	}
	return dec.Src, nil
}

func (s *Stack) String() string {
	return fmt.Sprintf("transport(%s: %d udp, %d conns, %d listeners)",
		s.host.Name(), len(s.udp), len(s.conns), len(s.listeners))
}
