package transport

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
)

// pair is two hosts with transport stacks on one network.
type pair struct {
	loop   *sim.Loop
	a, b   *Stack
	aAddr  ip.Addr
	bAddr  ip.Addr
	net    *link.Network
	bIface *stack.Iface
}

func newPair(t *testing.T, medium link.Medium, seed int64) *pair {
	t.Helper()
	loop := sim.New(seed)
	n := link.NewNetwork(loop, "net", medium)
	mk := func(name, addr string) (*Stack, *stack.Iface) {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth0", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		ifc := h.AddIface("eth0", d, ip.MustParseAddr(addr), ip.MustParsePrefix("10.0.0.0/24"), stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		return NewStack(h), ifc
	}
	a, _ := mk("a", "10.0.0.1")
	b, bIfc := mk("b", "10.0.0.2")
	loop.RunFor(0)
	return &pair{
		loop: loop, a: a, b: b,
		aAddr: ip.MustParseAddr("10.0.0.1"),
		bAddr: ip.MustParseAddr("10.0.0.2"),
		net:   n, bIface: bIfc,
	}
}

func TestUDPEcho(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var echoed []byte
	srv, err := p.b.UDP(ip.Unspecified, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.handler = func(d Datagram) { srv.SendTo(d.From, d.FromPort, d.Payload) }

	cli, err := p.a.UDP(ip.Unspecified, 0, func(d Datagram) { echoed = d.Payload })
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.SendTo(p.bAddr, 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(time.Second)
	if string(echoed) != "ping" {
		t.Fatalf("echoed %q", echoed)
	}
	if cli.Sent != 1 || cli.Received != 1 || srv.Received != 1 {
		t.Fatalf("counters cli=%d/%d srv=%d", cli.Sent, cli.Received, srv.Received)
	}
}

func TestUDPDatagramMetadata(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var got Datagram
	_, err := p.b.UDP(ip.Unspecified, 53, func(d Datagram) { got = d })
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := p.a.UDP(ip.Unspecified, 5555, nil)
	cli.SendTo(p.bAddr, 53, []byte("q"))
	p.loop.RunFor(time.Second)
	if got.From != p.aAddr || got.FromPort != 5555 || got.To != p.bAddr || got.ToPort != 53 {
		t.Fatalf("metadata: %+v", got)
	}
	if got.Iface == nil || got.Iface.Name() != "eth0" {
		t.Fatalf("arrival iface: %v", got.Iface)
	}
}

func TestUDPPortInUse(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	if _, err := p.a.UDP(ip.Unspecified, 68, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.a.UDP(ip.Unspecified, 68, nil); err != ErrPortInUse {
		t.Fatalf("err = %v", err)
	}
	// Binding the same port on a specific address is allowed (distinct key).
	if _, err := p.a.UDP(p.aAddr, 68, nil); err != nil {
		t.Fatalf("specific bind rejected: %v", err)
	}
}

func TestUDPExactBindingBeatsWildcard(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	hitExact, hitWild := 0, 0
	p.b.UDP(p.bAddr, 99, func(Datagram) { hitExact++ })
	p.b.UDP(ip.Unspecified, 99, func(Datagram) { hitWild++ })
	cli, _ := p.a.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(p.bAddr, 99, []byte("x"))
	p.loop.RunFor(time.Second)
	if hitExact != 1 || hitWild != 0 {
		t.Fatalf("exact=%d wild=%d", hitExact, hitWild)
	}
}

func TestUDPNoSocketCounted(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	cli, _ := p.a.UDP(ip.Unspecified, 0, nil)
	cli.SendTo(p.bAddr, 4242, []byte("x"))
	p.loop.RunFor(time.Second)
	if p.b.StatsSnapshot().UDPNoSocket != 1 {
		t.Fatal("UDPNoSocket not counted")
	}
}

func TestUDPCloseReleasesBinding(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	s, _ := p.a.UDP(ip.Unspecified, 1000, nil)
	s.Close()
	if err := s.SendTo(p.bAddr, 7, nil); err != ErrClosed {
		t.Fatalf("send on closed: %v", err)
	}
	if _, err := p.a.UDP(ip.Unspecified, 1000, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	s.Close() // double close is a no-op
}

func TestUDPNoRoute(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	cli, _ := p.a.UDP(ip.Unspecified, 0, nil)
	if err := cli.SendTo(ip.MustParseAddr("99.9.9.9"), 7, nil); err == nil {
		t.Fatal("send with no route succeeded")
	}
}

func TestUDPBoundSourceUsed(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var from ip.Addr
	p.b.UDP(ip.Unspecified, 7, func(d Datagram) { from = d.From })
	cli, _ := p.a.UDP(p.aAddr, 0, nil)
	cli.SendTo(p.bAddr, 7, []byte("x"))
	p.loop.RunFor(time.Second)
	if from != p.aAddr {
		t.Fatalf("source %v", from)
	}
}

func TestUDPBroadcastVia(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	got := 0
	p.b.UDP(ip.Unspecified, 67, func(d Datagram) { got++ })
	// A client with no usable address broadcasts out a specific interface.
	h := p.a.Host()
	cli, _ := p.a.UDP(ip.Unspecified, 68, nil)
	err := cli.SendToVia(h.IfaceByName("eth0"), ip.Broadcast, ip.Broadcast, 67, []byte("DISCOVER"))
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("broadcast datagrams received: %d", got)
	}
}

// establish dials from a to b:port and waits for both sides.
func establish(t *testing.T, p *pair, port uint16) (client, server *Conn) {
	t.Helper()
	accepted := make(chan *Conn, 1) // buffered; filled synchronously in sim
	var srvConn *Conn
	_, err := p.b.Listen(ip.Unspecified, port, func(c *Conn) { srvConn = c; accepted <- c })
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.a.Connect(ip.Unspecified, p.bAddr, port)
	if err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(5 * time.Second)
	if !c.Established() {
		t.Fatalf("client not established: %v", c.State())
	}
	if srvConn == nil || !srvConn.Established() {
		t.Fatal("server not established")
	}
	return c, srvConn
}

func TestStreamHandshake(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var cliUp, srvUp bool
	var srv *Conn
	p.b.Listen(ip.Unspecified, 80, func(c *Conn) {
		srv = c
		c.OnEstablished = func() { srvUp = true }
	})
	c, err := p.a.Connect(ip.Unspecified, p.bAddr, 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnEstablished = func() { cliUp = true }
	p.loop.RunFor(time.Second)
	if !cliUp || !srvUp {
		t.Fatalf("established cli=%v srv=%v", cliUp, srvUp)
	}
	la, lp := c.LocalAddr()
	ra, rp := c.RemoteAddr()
	if la != p.aAddr || ra != p.bAddr || rp != 80 || lp == 0 {
		t.Fatalf("addrs %v:%d -> %v:%d", la, lp, ra, rp)
	}
	if srv == nil || srv.State() != StateEstablished {
		t.Fatal("server conn state wrong")
	}
}

func TestStreamBulkTransfer(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	c, srv := establish(t, p, 80)
	var rcvd bytes.Buffer
	srv.OnData = func(b []byte) { rcvd.Write(b) }

	data := make([]byte, 50_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	p.loop.RunFor(30 * time.Second)
	if !bytes.Equal(rcvd.Bytes(), data) {
		t.Fatalf("received %d bytes, corrupted or short (want %d)", rcvd.Len(), len(data))
	}
	if c.Unacked() != 0 {
		t.Fatalf("unacked bytes remain: %d", c.Unacked())
	}
}

func TestStreamBidirectional(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	c, srv := establish(t, p, 80)
	var atSrv, atCli bytes.Buffer
	srv.OnData = func(b []byte) { atSrv.Write(b) }
	c.OnData = func(b []byte) { atCli.Write(b) }
	c.Write([]byte("request"))
	srv.Write([]byte("response"))
	p.loop.RunFor(5 * time.Second)
	if atSrv.String() != "request" || atCli.String() != "response" {
		t.Fatalf("got %q / %q", atSrv.String(), atCli.String())
	}
}

func TestStreamOverLossyLink(t *testing.T) {
	m := link.Ethernet()
	m.LossProb = 0.15
	p := newPair(t, m, 99)
	c, srv := establish(t, p, 80)
	var rcvd bytes.Buffer
	srv.OnData = func(b []byte) { rcvd.Write(b) }
	data := make([]byte, 30_000)
	for i := range data {
		data[i] = byte(i ^ (i >> 8))
	}
	c.Write(data)
	p.loop.RunFor(5 * time.Minute)
	if !bytes.Equal(rcvd.Bytes(), data) {
		t.Fatalf("lossy transfer corrupt: got %d want %d bytes", rcvd.Len(), len(data))
	}
	if c.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions on a 15%-loss link?")
	}
}

func TestStreamOrderlyClose(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	c, srv := establish(t, p, 80)
	var srvSawClose, cliSawClose bool
	srv.OnRemoteClose = func() { srvSawClose = true }
	c.OnRemoteClose = func() { cliSawClose = true }
	var rcvd bytes.Buffer
	srv.OnData = func(b []byte) { rcvd.Write(b) }

	c.Write([]byte("last words"))
	c.Close()
	p.loop.RunFor(10 * time.Second)
	if rcvd.String() != "last words" {
		t.Fatalf("data lost at close: %q", rcvd.String())
	}
	if !srvSawClose || !cliSawClose {
		t.Fatalf("close notifications srv=%v cli=%v", srvSawClose, cliSawClose)
	}
	if c.State() != StateClosed || srv.State() != StateClosed {
		t.Fatalf("states %v / %v", c.State(), srv.State())
	}
	if len(p.a.conns) != 0 || len(p.b.conns) != 0 {
		t.Fatal("connection table not cleaned up")
	}
}

func TestStreamConnectRefused(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var gotErr error
	c, err := p.a.Connect(ip.Unspecified, p.bAddr, 4444) // nobody listening
	if err != nil {
		t.Fatal(err)
	}
	c.OnError = func(e error) { gotErr = e }
	p.loop.RunFor(5 * time.Second)
	if gotErr != ErrConnReset {
		t.Fatalf("err = %v, want reset", gotErr)
	}
}

func TestStreamConnectTimeout(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	var gotErr error
	c, err := p.a.Connect(ip.Unspecified, ip.MustParseAddr("10.0.0.99"), 80) // no such host
	if err != nil {
		t.Fatal(err)
	}
	c.OnError = func(e error) { gotErr = e }
	p.loop.RunFor(10 * time.Minute)
	if gotErr != ErrConnTimeout {
		t.Fatalf("err = %v, want timeout", gotErr)
	}
}

func TestStreamAbort(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	c, srv := establish(t, p, 80)
	var srvErr error
	srv.OnError = func(e error) { srvErr = e }
	c.Abort()
	p.loop.RunFor(time.Second)
	if c.State() != StateClosed {
		t.Fatal("aborter not closed")
	}
	if srvErr != ErrConnReset {
		t.Fatalf("peer error = %v", srvErr)
	}
}

func TestStreamWriteAfterClose(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	c, _ := establish(t, p, 80)
	c.Close()
	if err := c.Write([]byte("too late")); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamRTTAdaptation(t *testing.T) {
	// On a high-latency link the RTO must grow past the RTT; on ethernet
	// it must stay near the floor.
	m := link.Ethernet()
	m.Latency = 120 * time.Millisecond // ~240ms RTT, radio-like
	p := newPair(t, m, 1)
	c, srv := establish(t, p, 80)
	srv.OnData = func([]byte) {}
	for i := 0; i < 20; i++ {
		c.Write(make([]byte, 500))
	}
	p.loop.RunFor(time.Minute)
	if c.Stats().Retransmits != 0 {
		t.Fatalf("spurious retransmits on lossless link: %d", c.Stats().Retransmits)
	}
	if c.RTO() < 240*time.Millisecond {
		t.Fatalf("RTO %v below path RTT", c.RTO())
	}
}

func TestStreamSurvivesHandshakeAckLoss(t *testing.T) {
	// Drop exactly the client's handshake ACK: the server's SYN-ACK
	// retransmission must complete the handshake.
	m := link.Ethernet()
	p := newPair(t, m, 5)
	var srv *Conn
	p.b.Listen(ip.Unspecified, 80, func(c *Conn) { srv = c })
	c, err := p.a.Connect(ip.Unspecified, p.bAddr, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: bring b down briefly right after it sends SYN-ACK so the
	// client's ACK is lost in flight.
	p.loop.Schedule(400*time.Microsecond, func() {
		d := p.b.Host().IfaceByName("eth0").Device()
		d.BringDown()
		p.loop.Schedule(50*time.Millisecond, func() { d.BringUp(nil) })
	})
	p.loop.RunFor(30 * time.Second)
	if !c.Established() || srv == nil || !srv.Established() {
		t.Fatalf("handshake did not recover: cli=%v", c.State())
	}
}

// Property: any sequence of writes with arbitrary sizes arrives as the
// exact concatenated byte stream, over a mildly lossy link.
func TestPropertyStreamByteStream(t *testing.T) {
	f := func(chunks [][]byte, seed int64) bool {
		m := link.Ethernet()
		m.LossProb = 0.05
		p := newPair(t, m, seed)
		c, srv := establish(t, p, 80)
		var rcvd bytes.Buffer
		srv.OnData = func(b []byte) { rcvd.Write(b) }
		var want bytes.Buffer
		total := 0
		for _, ch := range chunks {
			if total+len(ch) > 20000 {
				break
			}
			total += len(ch)
			want.Write(ch)
			if err := c.Write(ch); err != nil {
				return false
			}
		}
		p.loop.RunFor(2 * time.Minute)
		return bytes.Equal(rcvd.Bytes(), want.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	p := newPair(t, link.Ethernet(), 1)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s, err := p.a.UDP(ip.Unspecified, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Port()] {
			t.Fatalf("duplicate ephemeral port %d", s.Port())
		}
		seen[s.Port()] = true
	}
}

func TestConnStateString(t *testing.T) {
	for st, want := range map[ConnState]string{
		StateSynSent: "syn-sent", StateSynRcvd: "syn-rcvd",
		StateEstablished: "established", StateFinSent: "fin-sent", StateClosed: "closed",
	} {
		if st.String() != want {
			t.Errorf("%d -> %q", st, st.String())
		}
	}
}

// TestStreamRecoversFromWindowLoss models a handoff blackout: the receiver
// vanishes long enough for a whole window of segments to be lost, then
// returns. Recovery must be ACK-clocked (a round trip per lost segment at
// worst), not one segment per backed-off RTO.
func TestStreamRecoversFromWindowLoss(t *testing.T) {
	p := newPair(t, link.Ethernet(), 11)
	c, srv := establish(t, p, 80)
	var rcvd bytes.Buffer
	srv.OnData = func(b []byte) { rcvd.Write(b) }

	data := make([]byte, 12_000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	// Receiver goes dark, the sender blasts a window into the void.
	dev := p.b.Host().IfaceByName("eth0").Device()
	dev.BringDown()
	c.Write(data)
	p.loop.RunFor(10 * time.Second) // several RTOs back off
	dev.BringUp(nil)

	// Once the link returns, recovery must complete within the backed-off
	// RTO (<= 60s) plus a handful of round trips — not one MSS per RTO
	// (which would need ~12 minutes here).
	p.loop.RunFor(90 * time.Second)
	if !bytes.Equal(rcvd.Bytes(), data) {
		t.Fatalf("recovered %d of %d bytes; go-back-N recovery not ACK-clocked", rcvd.Len(), len(data))
	}
	if c.Unacked() != 0 {
		t.Fatalf("unacked remain: %d", c.Unacked())
	}
	if c.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
}
