package transport

import (
	"mosquitonet/internal/ip"
	"mosquitonet/internal/stack"
)

// Datagram is a received UDP datagram with its addressing metadata.
type Datagram struct {
	From     ip.Addr
	FromPort uint16
	To       ip.Addr // the address the datagram was sent to (home vs local role)
	ToPort   uint16
	Payload  []byte
	Iface    *stack.Iface // interface of arrival (VIF for tunneled traffic)
}

// UDPSocket is a bound UDP endpoint delivering datagrams to a callback.
type UDPSocket struct {
	stk     *Stack
	bound   ip.Addr
	port    uint16
	handler func(Datagram)
	closed  bool

	// Sent and Received count datagrams through this socket.
	Sent, Received uint64
}

// UDP opens a socket bound to (bound, port). A zero port allocates an
// ephemeral one; an unspecified bound address receives on all local
// addresses and leaves source selection to the route lookup (i.e. subject
// to mobile IP on a mobile host).
func (s *Stack) UDP(bound ip.Addr, port uint16, handler func(Datagram)) (*UDPSocket, error) {
	if port == 0 {
		p, err := s.ephemeralPort(bound)
		if err != nil {
			return nil, err
		}
		port = p
	}
	k := bindKey{bound, port}
	if s.udp[k] != nil {
		return nil, ErrPortInUse
	}
	u := &UDPSocket{stk: s, bound: bound, port: port, handler: handler}
	if s.udp == nil { // lazy: allocated on first bind
		s.udp = make(map[bindKey]*UDPSocket)
	}
	s.udp[k] = u
	return u, nil
}

// Port returns the socket's local port.
func (u *UDPSocket) Port() uint16 { return u.port }

// Bound returns the socket's bound address (possibly unspecified).
func (u *UDPSocket) Bound() ip.Addr { return u.bound }

// Close releases the socket's binding.
func (u *UDPSocket) Close() {
	if u.closed {
		return
	}
	u.closed = true
	delete(u.stk.udp, bindKey{u.bound, u.port})
}

// SendTo transmits payload to (dst, dport). The pseudo-header checksum is
// computed against the source address the route lookup recommends, then
// the packet is handed to IP with that source already stamped — matching
// the paper's description of transport protocols consulting ip_rt_route().
func (u *UDPSocket) SendTo(dst ip.Addr, dport uint16, payload []byte) error {
	if u.closed {
		return ErrClosed
	}
	src, err := u.stk.resolveSrc(dst, u.bound)
	if err != nil {
		return err
	}
	seg := ip.MarshalUDP(src, dst, ip.UDPHeader{SrcPort: u.port, DstPort: dport}, payload)
	pkt := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: src, Dst: dst},
		Payload: seg,
	}
	u.Sent++
	return u.stk.host.Output(pkt)
}

// SendToVia transmits a datagram out a specific interface toward nextHop,
// bypassing routing. DHCP clients use it before they have an address.
func (u *UDPSocket) SendToVia(ifc *stack.Iface, nextHop, dst ip.Addr, dport uint16, payload []byte) error {
	if u.closed {
		return ErrClosed
	}
	src := u.bound
	seg := ip.MarshalUDP(src, dst, ip.UDPHeader{SrcPort: u.port, DstPort: dport}, payload)
	pkt := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: src, Dst: dst},
		Payload: seg,
	}
	u.Sent++
	return u.stk.host.OutputVia(ifc, pkt, nextHop)
}

// udpInput demultiplexes a received UDP packet: exact binding first, then
// the wildcard binding on the same port.
func (s *Stack) udpInput(ifc *stack.Iface, pkt *ip.Packet) {
	h, payload, err := ip.UnmarshalUDP(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		s.stats.UDPBadChecksum++
		return
	}
	// Exact (addr, port) binding first; a wildcard binding on the same
	// port is next in line. A handler-less exact binding (a send-only
	// socket, like a probe's source) must not mask the wildcard: it has
	// nowhere to deliver, so the datagram falls through rather than being
	// swallowed as UDPNoSocket.
	sock := s.udp[bindKey{pkt.Dst, h.DstPort}]
	if sock == nil || sock.handler == nil {
		if w := s.udp[bindKey{ip.Unspecified, h.DstPort}]; w != nil && w.handler != nil {
			sock = w
		}
	}
	if sock == nil || sock.handler == nil {
		s.stats.UDPNoSocket++
		return
	}
	s.stats.UDPDelivered++
	sock.Received++
	sock.handler(Datagram{
		From:     pkt.Src,
		FromPort: h.SrcPort,
		To:       pkt.Dst,
		ToPort:   h.DstPort,
		Payload:  payload,
		Iface:    ifc,
	})
}
