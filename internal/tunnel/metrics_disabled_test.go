package tunnel

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/stack"
)

// TestEndpointWithoutMetricsRegistry pins down that building and running a
// tunnel endpoint on a loop that never called metrics.Enable works: New must
// not reach through a nil registry, and the encap/decap counters must still
// advance via their detached handles.
func TestEndpointWithoutMetricsRegistry(t *testing.T) {
	e := buildEnv(t) // buildEnv never enables telemetry
	if metrics.For(e.loop) != nil {
		t.Fatal("test premise broken: loop unexpectedly has a metrics registry")
	}

	routeViaVIF(e.mh, e.mhT, "36.0.0.0/8")
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))
	delivered := 0
	e.ha.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, _ *ip.Packet) { delivered++ })

	inner := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.135.0.1")},
		Payload: []byte("no telemetry"),
	}
	if err := e.mh.Output(inner); err != nil {
		t.Fatal(err)
	}
	e.loop.RunFor(time.Second)

	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	if e.mhT.Stats().Encapsulated != 1 || e.haT.Stats().Decapsulated != 1 {
		t.Fatalf("stats without registry: %+v %+v", e.mhT.Stats(), e.haT.Stats())
	}
}
