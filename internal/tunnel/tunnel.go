// Package tunnel implements the paper's fused VIF/IP-in-IP module: a
// virtual interface that encapsulates packets routed to it, plus the
// protocol-4 receive handler that decapsulates tunneled packets and
// re-injects them into the host's IP input path.
//
// Both mobile hosts and home agents instantiate one Endpoint. What differs
// is only the two address callbacks: a mobile host stamps its care-of
// address as the outer source and its home agent as the outer destination;
// a home agent stamps its own address and looks the outer destination up
// in its mobility binding table, per packet.
//
// The outer source is always a specific physical address, never left
// unspecified. That is the paper's loop-prevention rule: a packet emitted
// by the VIF re-enters IP output, and because its source is bound, the
// (mobility-aware) route lookup classifies it as outside the scope of
// mobile IP and never hands it back to the VIF.
package tunnel

import (
	"errors"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
)

// kSpanRebound marks the instant the endpoint first emits with a new outer
// source — the moment a handoff's re-established tunnel actually carries
// traffic from the new care-of address.
const kSpanRebound = "tunnel.rebound"

// PriEncap is the POSTROUTING priority of the encapsulation hooks; decap
// hooks run on INPUT at stack.PriDecap, between reassembly and the
// protocol demux.
const PriEncap = 0

// Stats counts tunnel activity.
type Stats struct {
	Encapsulated uint64
	Decapsulated uint64
	DropNoDst    uint64 // no tunnel destination for the inner packet
	DropNoSrc    uint64 // no usable outer source (no connectivity)
	DropBadInner uint64 // inner packet failed to parse
	DropPeer     uint64 // outer source rejected by the peer check
	DropOutput   uint64 // outer packet unroutable
}

// ErrNoTunnelDst is recorded when the destination callback declines a
// packet.
var ErrNoTunnelDst = errors.New("tunnel: no destination for packet")

// Endpoint is one host's VIF/IPIP module.
type Endpoint struct {
	host *stack.Host
	vif  *stack.Iface

	outerSrc func() (ip.Addr, bool)
	outerDst func(inner *ip.Packet) (ip.Addr, bool)

	// AllowPeer, if set, filters decapsulation by outer source address.
	// The paper implements no authentication (Section 2 defers security),
	// so the default accepts any peer.
	AllowPeer func(outer ip.Addr) bool

	stats Stats

	encapBytes, decapBytes *metrics.Counter
	pktlog                 *metrics.PacketLog
	tracer                 *trace.Tracer
	lastSrc                ip.Addr // outer source of the last transmit
}

// New creates the endpoint, adds its virtual interface named name to the
// host, and registers the endpoint's two pipeline hooks: encapsulation on
// POSTROUTING (stealing packets routed to the VIF) and decapsulation on
// INPUT (stealing protocol-4 packets before the demux). outerSrc supplies
// the physical (care-of) address for outgoing encapsulation; outerDst
// supplies the remote tunnel endpoint for a given inner packet.
//
// When several endpoints share a host, their decap hooks run in VIF-name
// order and the first steals every IPIP packet, so inbound tunneled
// traffic is attributed to the lowest-named VIF.
func New(host *stack.Host, name string, outerSrc func() (ip.Addr, bool), outerDst func(*ip.Packet) (ip.Addr, bool)) *Endpoint {
	e := &Endpoint{host: host, outerSrc: outerSrc, outerDst: outerDst}
	e.vif = host.AddVirtualIface(name, nil) // egress is owned by the encap hook
	host.Hooks(pipeline.Postrouting).Register(pipeline.Hook[*stack.PacketContext]{
		Name: "ipip-encap:" + name, Priority: PriEncap,
		Fn: func(ctx *stack.PacketContext) pipeline.Verdict {
			if ctx.Out != e.vif {
				return pipeline.Accept
			}
			e.transmit(ctx.Pkt, ctx.NextHop)
			return pipeline.Stolen
		},
	})
	host.Hooks(pipeline.Input).Register(pipeline.Hook[*stack.PacketContext]{
		Name: "ipip-decap:" + name, Priority: stack.PriDecap,
		Fn: func(ctx *stack.PacketContext) pipeline.Verdict {
			if ctx.Pkt.Protocol != ip.ProtoIPIP {
				return pipeline.Accept
			}
			ctx.MarkDelivered("ipip")
			e.receive(ctx.In, ctx.Pkt)
			return pipeline.Stolen
		},
	})
	e.pktlog = metrics.PacketsFor(host.Loop())
	e.tracer = trace.For(host.Loop())
	// The byte counters are detached handles the endpoint increments on
	// the data path; the snapshot-time collector below publishes them
	// together with the stats-struct counters. One closure per endpoint
	// replaces a 9-entry registry roster (rows are byte-identical), and a
	// nil registry (telemetry disabled) stays valid throughout: Collect is
	// a no-op, so the endpoint never gates construction on metrics.
	e.encapBytes = &metrics.Counter{}
	e.decapBytes = &metrics.Counter{}
	metrics.For(host.Loop()).Collect(func(c *metrics.Collection) {
		lbls := []metrics.Label{metrics.L("host", host.Name()), metrics.L("vif", name)}
		c.Counter("tunnel.endpoint.encap_bytes", e.encapBytes.Value(), lbls...)
		c.Counter("tunnel.endpoint.decap_bytes", e.decapBytes.Value(), lbls...)
		c.Counter("tunnel.endpoint.encapsulated", e.stats.Encapsulated, lbls...)
		c.Counter("tunnel.endpoint.decapsulated", e.stats.Decapsulated, lbls...)
		c.Counter("tunnel.endpoint.drop_no_dst", e.stats.DropNoDst, lbls...)
		c.Counter("tunnel.endpoint.drop_no_src", e.stats.DropNoSrc, lbls...)
		c.Counter("tunnel.endpoint.drop_bad_inner", e.stats.DropBadInner, lbls...)
		c.Counter("tunnel.endpoint.drop_peer", e.stats.DropPeer, lbls...)
		c.Counter("tunnel.endpoint.drop_output", e.stats.DropOutput, lbls...)
	})
	return e
}

// Iface returns the endpoint's virtual interface, for use in routes and
// route-lookup decisions.
func (e *Endpoint) Iface() *stack.Iface { return e.vif }

// Stats returns a snapshot of the counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// transmit is the encap hook's body: encapsulate and re-enter IP output.
func (e *Endpoint) transmit(inner *ip.Packet, _ ip.Addr) {
	name := e.host.Name()
	dst, ok := e.outerDst(inner)
	if !ok {
		e.stats.DropNoDst++
		e.pktlog.Record(inner.Trace, name, "tunnel.drop", "no tunnel destination")
		return
	}
	src, ok := e.outerSrc()
	if !ok {
		e.stats.DropNoSrc++
		e.pktlog.Record(inner.Trace, name, "tunnel.drop", "no outer source")
		return
	}
	outer, err := ip.Encapsulate(src, dst, ip.DefaultTTL, e.host.NextID(), inner)
	if err != nil {
		e.stats.DropBadInner++
		e.pktlog.Record(inner.Trace, name, "tunnel.drop", "encapsulation failed")
		return
	}
	e.stats.Encapsulated++
	e.encapBytes.Add(uint64(outer.Len()))
	if e.tracer != nil && src != e.lastSrc {
		if !e.lastSrc.IsUnspecified() {
			sp := e.tracer.StartSpan(name, kSpanRebound)
			sp.SetAttr("vif", e.vif.Name())
			sp.SetAttr("old", e.lastSrc.String())
			sp.SetAttr("new", src.String())
			sp.Done()
		}
		e.lastSrc = src
	}
	if e.pktlog != nil { // guard: the detail string is costly to format
		e.pktlog.Record(outer.Trace, name, "tunnel.encap", outer.Src.String()+"->"+outer.Dst.String())
	}
	if err := e.host.Output(outer); err != nil {
		e.stats.DropOutput++
		e.pktlog.Record(outer.Trace, name, "tunnel.drop", "outer packet unroutable")
	}
}

// receive is the decap hook's body: strip the outer header, validate the
// inner packet, and re-inject it as if it had arrived on the VIF.
func (e *Endpoint) receive(_ *stack.Iface, outer *ip.Packet) {
	name := e.host.Name()
	if e.AllowPeer != nil && !e.AllowPeer(outer.Src) {
		e.stats.DropPeer++
		if e.pktlog != nil { // guard: the detail string is costly to format
			e.pktlog.Record(outer.Trace, name, "tunnel.drop", "peer rejected: "+outer.Src.String())
		}
		return
	}
	inner, err := ip.Decapsulate(outer)
	if err != nil {
		e.stats.DropBadInner++
		e.pktlog.Record(outer.Trace, name, "tunnel.drop", "bad inner packet")
		return
	}
	e.stats.Decapsulated++
	e.decapBytes.Add(uint64(outer.Len()))
	if e.pktlog != nil { // guard: the detail string is costly to format
		e.pktlog.Record(inner.Trace, name, "tunnel.decap", inner.String())
	}
	e.host.Input(e.vif, inner)
}
