// Package tunnel implements the paper's fused VIF/IP-in-IP module: a
// virtual interface that encapsulates packets routed to it, plus the
// protocol-4 receive handler that decapsulates tunneled packets and
// re-injects them into the host's IP input path.
//
// Both mobile hosts and home agents instantiate one Endpoint. What differs
// is only the two address callbacks: a mobile host stamps its care-of
// address as the outer source and its home agent as the outer destination;
// a home agent stamps its own address and looks the outer destination up
// in its mobility binding table, per packet.
//
// The outer source is always a specific physical address, never left
// unspecified. That is the paper's loop-prevention rule: a packet emitted
// by the VIF re-enters IP output, and because its source is bound, the
// (mobility-aware) route lookup classifies it as outside the scope of
// mobile IP and never hands it back to the VIF.
package tunnel

import (
	"errors"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/stack"
)

// Stats counts tunnel activity.
type Stats struct {
	Encapsulated uint64
	Decapsulated uint64
	DropNoDst    uint64 // no tunnel destination for the inner packet
	DropNoSrc    uint64 // no usable outer source (no connectivity)
	DropBadInner uint64 // inner packet failed to parse
	DropPeer     uint64 // outer source rejected by the peer check
	DropOutput   uint64 // outer packet unroutable
}

// ErrNoTunnelDst is recorded when the destination callback declines a
// packet.
var ErrNoTunnelDst = errors.New("tunnel: no destination for packet")

// Endpoint is one host's VIF/IPIP module.
type Endpoint struct {
	host *stack.Host
	vif  *stack.Iface

	outerSrc func() (ip.Addr, bool)
	outerDst func(inner *ip.Packet) (ip.Addr, bool)

	// AllowPeer, if set, filters decapsulation by outer source address.
	// The paper implements no authentication (Section 2 defers security),
	// so the default accepts any peer.
	AllowPeer func(outer ip.Addr) bool

	stats Stats
}

// New creates the endpoint, adds its virtual interface named name to the
// host, and installs the IPIP protocol handler. outerSrc supplies the
// physical (care-of) address for outgoing encapsulation; outerDst supplies
// the remote tunnel endpoint for a given inner packet.
func New(host *stack.Host, name string, outerSrc func() (ip.Addr, bool), outerDst func(*ip.Packet) (ip.Addr, bool)) *Endpoint {
	e := &Endpoint{host: host, outerSrc: outerSrc, outerDst: outerDst}
	e.vif = host.AddVirtualIface(name, e.transmit)
	host.RegisterHandler(ip.ProtoIPIP, e.receive)
	return e
}

// Iface returns the endpoint's virtual interface, for use in routes and
// route-lookup decisions.
func (e *Endpoint) Iface() *stack.Iface { return e.vif }

// Stats returns a snapshot of the counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// transmit is the VIF's send function: encapsulate and re-enter IP output.
func (e *Endpoint) transmit(inner *ip.Packet, _ ip.Addr) {
	dst, ok := e.outerDst(inner)
	if !ok {
		e.stats.DropNoDst++
		return
	}
	src, ok := e.outerSrc()
	if !ok {
		e.stats.DropNoSrc++
		return
	}
	outer, err := ip.Encapsulate(src, dst, ip.DefaultTTL, e.host.NextID(), inner)
	if err != nil {
		e.stats.DropBadInner++
		return
	}
	e.stats.Encapsulated++
	if err := e.host.Output(outer); err != nil {
		e.stats.DropOutput++
	}
}

// receive is the protocol-4 handler: strip the outer header, validate the
// inner packet, and re-inject it as if it had arrived on the VIF.
func (e *Endpoint) receive(_ *stack.Iface, outer *ip.Packet) {
	if e.AllowPeer != nil && !e.AllowPeer(outer.Src) {
		e.stats.DropPeer++
		return
	}
	inner, err := ip.Decapsulate(outer)
	if err != nil {
		e.stats.DropBadInner++
		return
	}
	e.stats.Decapsulated++
	e.host.Input(e.vif, inner)
}
