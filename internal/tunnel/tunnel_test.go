package tunnel

import (
	"testing"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/pipeline"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
)

// env is two hosts on opposite subnets joined by a router, with a tunnel
// endpoint on each host.
type env struct {
	loop     *sim.Loop
	mh, ha   *stack.Host
	mhT, haT *Endpoint
	mhAddr   ip.Addr
	haAddr   ip.Addr
}

func buildEnv(t *testing.T) *env {
	t.Helper()
	loop := sim.New(1)
	netA := link.NewNetwork(loop, "foreign", link.Ethernet())
	netB := link.NewNetwork(loop, "home", link.Ethernet())

	mk := func(name, cidr string, n *link.Network) (*stack.Host, *stack.Iface) {
		h := stack.NewHost(loop, name, stack.Config{})
		d := link.NewDevice(loop, name+"-eth0", 0, 0)
		d.Attach(n)
		d.BringUp(nil)
		pfx := ip.MustParsePrefix(cidr)
		addr := ip.MustParseAddr(cidr[:len(cidr)-3])
		ifc := h.AddIface("eth0", d, addr, pfx, stack.IfaceOpts{})
		h.ConnectRoute(ifc)
		return h, ifc
	}

	mh, mhIfc := mk("mh", "10.0.0.2/24", netA)
	ha, haIfc := mk("ha", "10.0.1.2/24", netB)
	router, rA := mk("router", "10.0.0.1/24", netA)
	rdB := link.NewDevice(loop, "r-eth1", 0, 0)
	rdB.Attach(netB)
	rdB.BringUp(nil)
	rB := router.AddIface("eth1", rdB, ip.MustParseAddr("10.0.1.1"), ip.MustParsePrefix("10.0.1.0/24"), stack.IfaceOpts{})
	router.ConnectRoute(rB)
	_ = rA
	router.SetForwarding(true)
	mh.AddDefaultRoute(ip.MustParseAddr("10.0.0.1"), mhIfc)
	ha.AddDefaultRoute(ip.MustParseAddr("10.0.1.1"), haIfc)
	loop.RunFor(0)

	e := &env{
		loop:   loop,
		mh:     mh,
		ha:     ha,
		mhAddr: ip.MustParseAddr("10.0.0.2"),
		haAddr: ip.MustParseAddr("10.0.1.2"),
	}
	e.mhT = New(mh, "vif0",
		func() (ip.Addr, bool) { return e.mhAddr, true },
		func(*ip.Packet) (ip.Addr, bool) { return e.haAddr, true })
	e.haT = New(ha, "vif0",
		func() (ip.Addr, bool) { return e.haAddr, true },
		func(*ip.Packet) (ip.Addr, bool) { return e.mhAddr, true })
	return e
}

// routeViaVIF points a destination prefix at the host's VIF.
func routeViaVIF(h *stack.Host, e *Endpoint, cidr string) {
	h.Routes().Add(stack.Route{Dst: ip.MustParsePrefix(cidr), Iface: e.Iface()})
}

func TestTunnelDelivery(t *testing.T) {
	e := buildEnv(t)
	// MH tunnels everything for 36.0.0.0/8 to the HA; the HA accepts the
	// inner packet locally (it is addressed to the HA itself here).
	routeViaVIF(e.mh, e.mhT, "36.0.0.0/8")
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))

	var got *ip.Packet
	var gotIfc *stack.Iface
	e.ha.RegisterHandler(ip.ProtoUDP, func(ifc *stack.Iface, pkt *ip.Packet) { got, gotIfc = pkt, ifc })

	inner := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.135.0.1")},
		Payload: []byte("tunneled"),
	}
	if err := e.mh.Output(inner); err != nil {
		t.Fatal(err)
	}
	e.loop.RunFor(time.Second)

	if got == nil {
		t.Fatal("inner packet not delivered")
	}
	if string(got.Payload) != "tunneled" || got.Src != inner.Src || got.Dst != inner.Dst {
		t.Fatalf("inner packet mangled: %v", got)
	}
	if gotIfc != e.haT.Iface() {
		t.Fatalf("delivered on %s, want the VIF", gotIfc.Name())
	}
	if e.mhT.Stats().Encapsulated != 1 || e.haT.Stats().Decapsulated != 1 {
		t.Fatalf("stats: %+v %+v", e.mhT.Stats(), e.haT.Stats())
	}
}

func TestTunnelBidirectional(t *testing.T) {
	e := buildEnv(t)
	routeViaVIF(e.mh, e.mhT, "36.0.0.0/8")
	routeViaVIF(e.ha, e.haT, "36.135.0.7/32")
	e.mh.AddLocalAddr(ip.MustParseAddr("36.135.0.7"))
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))

	var atMH, atHA int
	e.mh.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, _ *ip.Packet) { atMH++ })
	e.ha.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, _ *ip.Packet) { atHA++ })

	e.mh.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.135.0.1")}, Payload: []byte("up")})
	e.ha.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.1"), Dst: ip.MustParseAddr("36.135.0.7")}, Payload: []byte("down")})
	e.loop.RunFor(time.Second)
	if atMH != 1 || atHA != 1 {
		t.Fatalf("delivery mh=%d ha=%d", atMH, atHA)
	}
}

func TestDecapForwardsInnerForOtherHost(t *testing.T) {
	// Home-agent role: the inner packet is for a correspondent, not the
	// agent itself; with forwarding enabled it must continue on.
	e := buildEnv(t)
	// Tunnel via the route-lookup override, the paper's mechanism: a table
	// route for 10.0.1.0/24 through the VIF would also capture the outer
	// packets addressed to the home agent and loop them back into the
	// tunnel. The override instead keys on the unbound source.
	def := e.mh.DefaultRouteLookup
	e.mh.SetRouteLookup(func(dst, boundSrc ip.Addr) (stack.RouteDecision, error) {
		if boundSrc.IsUnspecified() || boundSrc == ip.MustParseAddr("36.135.0.7") {
			return stack.RouteDecision{Iface: e.mhT.Iface(), Src: ip.MustParseAddr("36.135.0.7"), NextHop: dst}, nil
		}
		return def(dst, boundSrc)
	})
	e.ha.SetForwarding(true)

	// Third host on the HA's subnet is the correspondent.
	chNet := e.ha.IfaceByName("eth0").Device().Network()
	ch := stack.NewHost(e.loop, "ch", stack.Config{})
	chd := link.NewDevice(e.loop, "ch-eth0", 0, 0)
	chd.Attach(chNet)
	chd.BringUp(nil)
	chIfc := ch.AddIface("eth0", chd, ip.MustParseAddr("10.0.1.3"), ip.MustParsePrefix("10.0.1.0/24"), stack.IfaceOpts{})
	ch.ConnectRoute(chIfc)
	e.loop.RunFor(0)

	var got *ip.Packet
	ch.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, pkt *ip.Packet) { got = pkt })

	e.mh.Output(&ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("10.0.1.3")},
		Payload: []byte("to ch"),
	})
	e.loop.RunFor(time.Second)
	if got == nil {
		t.Fatal("decapsulated packet not forwarded to correspondent")
	}
	if got.Src != ip.MustParseAddr("36.135.0.7") {
		t.Fatalf("correspondent sees source %v, want the home address", got.Src)
	}
}

func TestEncapsulationOverheadOnWire(t *testing.T) {
	e := buildEnv(t)
	routeViaVIF(e.mh, e.mhT, "36.0.0.0/8")
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))

	// Observe the outer packet with an INPUT hook ahead of the endpoint's
	// decap hook (stack.PriDecap); returning Accept lets decap proceed.
	var outerLen int
	e.ha.Hooks(pipeline.Input).Register(pipeline.Hook[*stack.PacketContext]{
		Name: "measure", Priority: stack.PriFirst,
		Fn: func(ctx *stack.PacketContext) pipeline.Verdict {
			if ctx.Pkt.Protocol == ip.ProtoIPIP {
				outerLen = ctx.Pkt.Len()
			}
			return pipeline.Accept
		},
	})
	inner := &ip.Packet{
		Header:  ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.135.0.1")},
		Payload: make([]byte, 100),
	}
	innerLen := inner.Len()
	e.mh.Output(inner)
	e.loop.RunFor(time.Second)
	if outerLen != innerLen+ip.HeaderLen {
		t.Fatalf("wire overhead %d bytes, want the paper's %d", outerLen-innerLen, ip.HeaderLen)
	}
}

func TestDropNoDst(t *testing.T) {
	e := buildEnv(t)
	ep := New(e.mh, "vif1",
		func() (ip.Addr, bool) { return e.mhAddr, true },
		func(*ip.Packet) (ip.Addr, bool) { return ip.Addr{}, false })
	routeViaVIF(e.mh, ep, "37.0.0.0/8")
	e.mh.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Dst: ip.MustParseAddr("37.1.1.1")}})
	e.loop.RunFor(time.Second)
	if ep.Stats().DropNoDst != 1 {
		t.Fatalf("DropNoDst = %d", ep.Stats().DropNoDst)
	}
}

func TestDropNoSrcWhenNoConnectivity(t *testing.T) {
	e := buildEnv(t)
	ep := New(e.mh, "vif1",
		func() (ip.Addr, bool) { return ip.Addr{}, false }, // no care-of address
		func(*ip.Packet) (ip.Addr, bool) { return e.haAddr, true })
	routeViaVIF(e.mh, ep, "37.0.0.0/8")
	e.mh.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Dst: ip.MustParseAddr("37.1.1.1")}})
	e.loop.RunFor(time.Second)
	if ep.Stats().DropNoSrc != 1 {
		t.Fatalf("DropNoSrc = %d", ep.Stats().DropNoSrc)
	}
}

func TestPeerFilter(t *testing.T) {
	e := buildEnv(t)
	routeViaVIF(e.mh, e.mhT, "36.0.0.0/8")
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))
	e.haT.AllowPeer = func(outer ip.Addr) bool { return outer == ip.MustParseAddr("9.9.9.9") }

	delivered := 0
	e.ha.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, _ *ip.Packet) { delivered++ })
	e.mh.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Src: ip.MustParseAddr("36.135.0.7"), Dst: ip.MustParseAddr("36.135.0.1")}, Payload: []byte("x")})
	e.loop.RunFor(time.Second)
	if delivered != 0 {
		t.Fatal("filtered peer's packet was delivered")
	}
	if e.haT.Stats().DropPeer != 1 {
		t.Fatalf("DropPeer = %d", e.haT.Stats().DropPeer)
	}
}

func TestCorruptInnerDropped(t *testing.T) {
	e := buildEnv(t)
	// Hand-deliver a protocol-4 packet whose payload is garbage.
	bogus := &ip.Packet{
		Header:  ip.Header{TTL: 64, Protocol: ip.ProtoIPIP, Src: e.mhAddr, Dst: e.haAddr},
		Payload: []byte{1, 2, 3, 4},
	}
	e.ha.Input(e.ha.IfaceByName("eth0"), bogus)
	e.loop.RunFor(time.Second)
	if e.haT.Stats().DropBadInner != 1 {
		t.Fatalf("DropBadInner = %d", e.haT.Stats().DropBadInner)
	}
}

// TestNoEncapsulationLoop verifies the paper's loop-prevention rule: the
// outer packet's bound source keeps it off the VIF even when the VIF route
// would match its destination.
func TestNoEncapsulationLoop(t *testing.T) {
	e := buildEnv(t)
	// Deliberately hostile routing: the tunnel destination itself is
	// routed via the VIF for unbound sources.
	def := e.mh.DefaultRouteLookup
	e.mh.SetRouteLookup(func(dst, boundSrc ip.Addr) (stack.RouteDecision, error) {
		if boundSrc.IsUnspecified() {
			return stack.RouteDecision{Iface: e.mhT.Iface(), Src: ip.MustParseAddr("36.135.0.7"), NextHop: dst}, nil
		}
		return def(dst, boundSrc)
	})
	e.ha.AddLocalAddr(ip.MustParseAddr("36.135.0.1"))
	delivered := 0
	e.ha.RegisterHandler(ip.ProtoUDP, func(_ *stack.Iface, _ *ip.Packet) { delivered++ })

	e.mh.Output(&ip.Packet{Header: ip.Header{Protocol: ip.ProtoUDP, Dst: ip.MustParseAddr("36.135.0.1")}, Payload: []byte("once")})
	e.loop.RunFor(time.Second)
	if enc := e.mhT.Stats().Encapsulated; enc != 1 {
		t.Fatalf("encapsulated %d times, want exactly 1", enc)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
}
