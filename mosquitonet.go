// Package mosquitonet is a from-scratch reproduction of "Supporting
// Mobility in MosquitoNet" (Baker, Zhao, Cheshire, Stone — USENIX 1996):
// a mobile-IP system in which mobile hosts require no foreign agents, only
// basic connectivity and a temporary care-of address, on top of a
// deterministic discrete-event network simulator with real wire formats.
//
// The package is a façade over the internal packages:
//
//   - sim: the deterministic event loop and virtual clock;
//   - ip, link, arp, stack, tunnel, dhcp, transport: the network substrate
//     (IPv4 with real checksums, Ethernet/radio media, ARP with proxy and
//     gratuitous support, per-host IP stacks with a pluggable route
//     lookup, the VIF/IP-in-IP module, DHCP, UDP and a TCP-like stream);
//   - mip: the paper's contribution — MobileHost, HomeAgent, the Mobile
//     Policy Table, the registration protocol, and the optional
//     ForeignAgent extension;
//   - testbed: the paper's Figure 5 environment and every experiment in
//     its evaluation.
//
// Use NewWorld to assemble custom topologies, or testbed-level entry
// points (NewTestbed, RunE1, RunF6, RunF7, ...) to regenerate the paper's
// results.
package mosquitonet

import (
	"mosquitonet/internal/app"
	"mosquitonet/internal/capture"
	"mosquitonet/internal/dhcp"
	"mosquitonet/internal/dns"
	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/scenario"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/stats"
	"mosquitonet/internal/testbed"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
	"mosquitonet/internal/tunnel"
)

// Core simulation types.
type (
	// Loop is the deterministic discrete-event simulation loop.
	Loop = sim.Loop
	// Time is an instant in virtual time.
	Time = sim.Time
	// Timer is a cancellable scheduled event.
	Timer = sim.Timer
	// ShardSet executes several loops in lockstep epochs bounded by a
	// conservative lookahead, optionally on a pool of worker goroutines;
	// results are byte-identical at any worker count.
	ShardSet = sim.ShardSet
	// Tracer records structured simulation events.
	Tracer = trace.Tracer
)

// Addressing and packet types.
type (
	// Addr is an IPv4 address.
	Addr = ip.Addr
	// IPPrefix is an IPv4 CIDR prefix.
	IPPrefix = ip.Prefix
	// Packet is an IPv4 packet.
	Packet = ip.Packet
)

// Link-layer types.
type (
	// Network is a broadcast domain with a medium model.
	Network = link.Network
	// Device is a network interface device with an up/down state machine.
	Device = link.Device
	// Medium describes latency/bandwidth/loss/MTU of a network.
	Medium = link.Medium
	// HWAddr is a MAC-style hardware address.
	HWAddr = link.HWAddr
)

// Host-stack and transport types.
type (
	// Host is a simulated IP host.
	Host = stack.Host
	// Iface is a host's network interface.
	Iface = stack.Iface
	// RouteDecision is a route lookup result (the ip_rt_route contract).
	RouteDecision = stack.RouteDecision
	// PingResult reports an ICMP echo outcome.
	PingResult = stack.PingResult
	// Transport multiplexes UDP sockets and stream connections on a host.
	Transport = transport.Stack
	// UDPSocket is a bound UDP endpoint.
	UDPSocket = transport.UDPSocket
	// Datagram is a received UDP datagram.
	Datagram = transport.Datagram
	// Conn is a reliable byte-stream connection (TCP-like).
	Conn = transport.Conn
	// Listener accepts stream connections.
	Listener = transport.Listener
	// TunnelEndpoint is a VIF/IP-in-IP module instance.
	TunnelEndpoint = tunnel.Endpoint
)

// Mobile-IP types (the paper's contribution).
type (
	// MobileHost is the mobile side of the protocol.
	MobileHost = mip.MobileHost
	// MobileHostConfig configures a MobileHost.
	MobileHostConfig = mip.MobileHostConfig
	// ManagedIface is an interface under mobility management.
	ManagedIface = mip.ManagedIface
	// StaticConfig is a fixed foreign-interface configuration.
	StaticConfig = mip.StaticConfig
	// HomeAgent serves a home subnet's mobile hosts.
	HomeAgent = mip.HomeAgent
	// HomeAgentConfig configures a HomeAgent.
	HomeAgentConfig = mip.HomeAgentConfig
	// ForeignAgent is the optional visited-network agent extension.
	ForeignAgent = mip.ForeignAgent
	// ForeignAgentConfig configures a ForeignAgent.
	ForeignAgentConfig = mip.ForeignAgentConfig
	// Policy is a Mobile Policy Table verdict.
	Policy = mip.Policy
	// PolicyTable is the Mobile Policy Table.
	PolicyTable = mip.PolicyTable
	// LinkChange notifies upper layers of connectivity changes.
	LinkChange = mip.LinkChange
	// Binding is a home agent's mobility binding.
	Binding = mip.Binding
	// Roamer automates switch decisions (the paper's Section 6 item).
	Roamer = mip.Roamer
	// RoamerConfig tunes the Roamer.
	RoamerConfig = mip.RoamerConfig
	// Candidate is one interface a Roamer may switch to.
	Candidate = mip.Candidate
	// DiscoveredAgent is a foreign agent heard advertising on a link.
	DiscoveredAgent = mip.DiscoveredAgent
)

// DHCP types.
type (
	// DHCPServer leases addresses on a subnet.
	DHCPServer = dhcp.Server
	// DHCPServerConfig configures a DHCPServer.
	DHCPServerConfig = dhcp.ServerConfig
	// DHCPClient acquires and renews a lease on one interface.
	DHCPClient = dhcp.Client
	// Lease is a granted DHCP binding.
	Lease = dhcp.Lease
)

// DNS types (the "extended DNS" of the paper's release notes).
type (
	// DNSServer answers A queries and dynamic updates.
	DNSServer = dns.Server
	// DNSServerConfig configures a DNSServer.
	DNSServerConfig = dns.ServerConfig
	// DNSResolver issues queries and updates with retry.
	DNSResolver = dns.Resolver
	// DNSResolverConfig tunes the resolver.
	DNSResolverConfig = dns.ResolverConfig
)

// Telemetry types. Every simulation layer registers its counters with the
// per-loop registry (enabled automatically by NewWorld and NewTestbed);
// Snapshot renders a deterministic table or JSON document, and the
// PacketLog reconstructs one packet's hop-by-hop lifecycle.
type (
	// MetricsRegistry holds a simulation's labeled counters, gauges and
	// histograms, keyed `layer.object.event`.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time, deterministically-ordered
	// rendering of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricLabel is one key=value dimension of a metric.
	MetricLabel = metrics.Label
	// PacketLog records packet-lifecycle events keyed by trace ID.
	PacketLog = metrics.PacketLog
	// PacketEvent is one hop in a packet's lifecycle.
	PacketEvent = metrics.PacketEvent
	// ExperimentExport is the machine-readable record of one experiment
	// run (seed, metrics snapshots, timeline).
	ExperimentExport = testbed.Export
)

// Re-exported telemetry helpers.
var (
	// EnableMetrics associates a registry with a loop; call it before
	// building devices and hosts so their constructors find it.
	EnableMetrics = metrics.Enable
	// MetricsFor returns the loop's registry, or nil.
	MetricsFor = metrics.For
	// TracePacketLifecycles associates a packet log with a loop (limit 0
	// means the default ring size).
	TracePacketLifecycles = metrics.TracePackets
	// PacketLogFor returns the loop's packet log, or nil.
	PacketLogFor = metrics.PacketsFor
	// ReleaseMetrics drops a loop's registry and packet-log associations.
	ReleaseMetrics = metrics.Release
	// Label constructs a metric label.
	Label = metrics.L
)

// Testbed types (the paper's Figure 5 environment and experiments).
type (
	// Testbed is the assembled paper environment.
	Testbed = testbed.Testbed
	// EchoProbe is the paper's UDP echo measurement workload.
	EchoProbe = testbed.EchoProbe
	// FlowProbe is the one-way sequence-numbered disruption workload.
	FlowProbe = testbed.FlowProbe
	// HandoffResult is the handoff observatory's full result.
	HandoffResult = testbed.HandoffResult
	// LoadedHandoffResult is the loaded-handoff observatory's full result.
	LoadedHandoffResult = testbed.LoadedHandoffResult
	// ScenarioResult is one compiled-and-run scenario's full result.
	ScenarioResult = testbed.ScenarioResult
	// SweepResult is the randomized-scenario sweep's full result.
	SweepResult = testbed.SweepResult
)

// Scenario types (the declarative experiment schema, DESIGN.md §14).
type (
	// ScenarioSpec is the versioned declarative scenario document:
	// topology, traffic mix, mobility itinerary, and fault schedule.
	ScenarioSpec = scenario.Spec
	// ScenarioWorld is a compiled scenario: the simulation loop plus every
	// named entity, the itinerary runner, and the fault injector.
	ScenarioWorld = scenario.World
	// ScenarioFault is one scheduled fault-injection event.
	ScenarioFault = scenario.Fault
	// AdminConsole is the line-oriented inspect/mutate interface over a
	// compiled scenario world (cmd/mnet -admin).
	AdminConsole = scenario.Console
)

// Application-layer types (workloads over the transport).
type (
	// MQTTBroker is the MQTT-style publish/subscribe broker.
	MQTTBroker = app.Broker
	// MQTTClient is the MQTT-style client.
	MQTTClient = app.Client
	// MQTTMessage is one delivered publication.
	MQTTMessage = app.Message
	// HTTPServer serves the HTTP-style request/response protocol.
	HTTPServer = app.HTTPServer
	// HTTPClient issues pipelined keep-alive requests.
	HTTPClient = app.HTTPClient
	// HTTPRequest and HTTPResponse are one exchange's halves.
	HTTPRequest  = app.HTTPRequest
	HTTPResponse = app.HTTPResponse
	// PubFlow is the open-loop telemetry traffic model; ReqFlow the open-
	// or closed-loop request/response model.
	PubFlow = app.PubFlow
	ReqFlow = app.ReqFlow
)

// Observability types (the span observatory).
type (
	// Span is one timed operation in a tracer's span record.
	Span = trace.Span
	// FlightRecorder dumps the recent trace on anomalies.
	FlightRecorder = trace.FlightRecorder
	// FlightDump is one captured anomaly snapshot.
	FlightDump = trace.FlightDump
	// FlowTracker follows one probe flow's loss/latency/reordering.
	FlowTracker = stats.FlowTracker
	// DisruptionReport quantifies what one handoff cost a flow.
	DisruptionReport = stats.DisruptionReport
	// DisruptionWindow is one interval disruption is attributed to.
	DisruptionWindow = stats.Window
)

// Mobile Policy Table policies.
const (
	PolicyTunnel      = mip.PolicyTunnel
	PolicyTriangle    = mip.PolicyTriangle
	PolicyEncapDirect = mip.PolicyEncapDirect
	PolicyDirect      = mip.PolicyDirect
)

// Re-exported constructors and helpers.
var (
	// NewLoop creates a deterministic simulation loop.
	NewLoop = sim.New

	// NewShardSet groups independent loops for deterministic parallel
	// execution; ShardSeed derives a shard's RNG stream from a base seed.
	NewShardSet = sim.NewShardSet
	ShardSeed   = sim.ShardSeed
	// NewTracer creates an event tracer.
	NewTracer = trace.New

	// ParseAddr, MustParseAddr, ParsePrefix and MustParsePrefix handle
	// dotted-quad and CIDR notation.
	ParseAddr       = ip.ParseAddr
	MustParseAddr   = ip.MustParseAddr
	ParsePrefix     = ip.ParsePrefix
	MustParsePrefix = ip.MustParsePrefix

	// Ethernet, Radio and Serial are the calibrated media of the paper's
	// testbed.
	Ethernet = link.Ethernet
	Radio    = link.Radio
	Serial   = link.Serial

	// NewNetwork creates a broadcast domain; NewDevice a network device.
	NewNetwork = link.NewNetwork
	NewDevice  = link.NewDevice

	// NewHost creates an IP host; NewTransport its UDP/stream transport.
	NewHost      = stack.NewHost
	NewTransport = transport.NewStack

	// NewMobileHost, NewHomeAgent and NewForeignAgent build the protocol
	// entities.
	NewMobileHost   = mip.NewMobileHost
	NewHomeAgent    = mip.NewHomeAgent
	NewForeignAgent = mip.NewForeignAgent
	// MakeSmartCorrespondent gives an ordinary host transparent IP-in-IP
	// decapsulation for the encapsulated-direct optimization.
	MakeSmartCorrespondent = mip.MakeSmartCorrespondent

	// NewDHCPServer and NewDHCPClient build the address-assignment
	// service mobile hosts rely on in foreign networks.
	NewDHCPServer = dhcp.NewServer
	NewDHCPClient = dhcp.NewClient

	// NewDNSServer and NewDNSResolver provide naming: with MosquitoNet a
	// mobile host's name resolves to its permanent home address and stays
	// valid through every move.
	NewDNSServer   = dns.NewServer
	NewDNSResolver = dns.NewResolver

	// NewRoamer builds the automatic switch-decision monitor.
	NewRoamer = mip.NewRoamer

	// NewTestbed assembles the paper's Figure 5 environment; the Run*
	// functions regenerate its evaluation (see DESIGN.md for the index).
	NewTestbed    = testbed.New
	NewEchoProbe  = testbed.NewEchoProbe
	RunE1         = testbed.RunE1
	RunF6         = testbed.RunF6
	RunF7         = testbed.RunF7
	RunRTT        = testbed.RunRTT
	RunA1         = testbed.RunA1
	RunA2         = testbed.RunA2
	RunA3         = testbed.RunA3
	RunA4         = testbed.RunA4
	RunThroughput = testbed.RunThroughput
	RunScale      = testbed.RunScale

	// RunHandoff drives the roaming itinerary under the span observatory:
	// per-handoff disruption reports, a flight recorder armed on anomalies,
	// and Chrome-loadable trace export. NewFlowProbe is its one-way
	// sequence-numbered measurement flow.
	RunHandoff   = testbed.RunHandoff
	NewFlowProbe = testbed.NewFlowProbe

	// RunLoadedHandoff replays the same itinerary under a sustained MQTT
	// pub/sub fleet and HTTP request/response mix, scoring each flow's
	// disruption against the root handoff spans.
	RunLoadedHandoff = testbed.RunLoadedHandoff

	// NewMQTTBroker/NewMQTTClient and NewHTTPServer/NewHTTPClient build
	// the application-layer workloads; NewPubFlow and NewReqFlow drive
	// them open- or closed-loop into a FlowTracker.
	NewMQTTBroker = app.NewBroker
	NewMQTTClient = app.NewClient
	NewHTTPServer = app.NewHTTPServer
	NewHTTPClient = app.NewHTTPClient
	NewPubFlow    = app.NewPubFlow
	NewReqFlow    = app.NewReqFlow

	// NewFlightRecorder arms dump-on-anomaly capture over a tracer's
	// bounded event/span rings.
	NewFlightRecorder = trace.NewFlightRecorder
	// TracerFor returns the tracer associated with a loop, or nil.
	TracerFor = trace.For

	// RunScaleWorkers and RunParallel drive the sharded scale fleet on a
	// worker pool: same byte-identical results at any worker count, less
	// wall-clock on multi-core machines.
	RunScaleWorkers = testbed.RunScaleWorkers
	RunParallel     = testbed.RunParallel

	// ParseScenario and CompileScenario lower a declarative spec onto the
	// simulator; Scenario and ScenarioNames read the embedded catalog;
	// RunScenarioProbe runs any spec with an itinerary and probes;
	// GenerateSweep and RunSweep derive and run randomized variants.
	ParseScenario    = scenario.Parse
	ValidateScenario = scenario.Validate
	CompileScenario  = scenario.Compile
	Scenario         = testbed.Scenario
	ScenarioNames    = testbed.ScenarioNames
	RunScenarioProbe = testbed.RunScenarioProbe
	GenerateSweep    = scenario.GenerateSweep
	RunSweep         = testbed.RunSweep
	NewAdminConsole  = scenario.NewConsole

	// NewCapture builds the packet-capture facility (the simulator's
	// tcpdump); FormatFrame and FormatPacket decode individual frames.
	NewCapture   = capture.New
	FormatFrame  = capture.FormatFrame
	FormatPacket = capture.FormatPacket
)

// Capture types.
type (
	// PacketCapture taps networks and decodes frames.
	PacketCapture = capture.Capture
	// CaptureEntry is one decoded frame.
	CaptureEntry = capture.Entry
)

// Unspecified is the zero IPv4 address; sockets bound to it are subject to
// mobile IP on a mobile host.
var Unspecified = ip.Unspecified
