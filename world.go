package mosquitonet

import (
	"fmt"
	"time"

	"mosquitonet/internal/ip"
	"mosquitonet/internal/link"
	"mosquitonet/internal/metrics"
	"mosquitonet/internal/mip"
	"mosquitonet/internal/sim"
	"mosquitonet/internal/stack"
	"mosquitonet/internal/trace"
	"mosquitonet/internal/transport"
)

// World is a convenience builder for custom internetworks: subnets hang
// off one backbone router, hosts get static addresses and default routes,
// and the mobile-IP entities attach with one call each. The paper's own
// environment is available pre-built as NewTestbed; World is for the
// examples and for downstream users assembling their own scenarios.
type World struct {
	// Loop drives the simulation; Tracer records protocol events.
	Loop   *Loop
	Tracer *Tracer

	// Metrics is the world's telemetry registry and Packets its
	// packet-lifecycle log; both are enabled before the router is built so
	// every layer registers its counters.
	Metrics *MetricsRegistry
	Packets *PacketLog

	// Router is the backbone router joining all subnets.
	Router *Host

	subnets map[string]*Subnet
	hostSeq int
}

// Subnet is one broadcast domain attached to the world's router.
type Subnet struct {
	Name   string
	Net    *Network
	Prefix IPPrefix
	// Gateway is the router's address on this subnet (host #1).
	Gateway Addr

	world *World
}

// EndHost is an ordinary (fixed) host with transport attached.
type EndHost struct {
	Host  *Host
	TS    *Transport
	Iface *Iface
	Addr  Addr
}

// MobileNode is a mobile host with its transport and managed interfaces.
type MobileNode struct {
	MH *MobileHost
	TS *Transport
}

// NewWorld creates an empty world with a backbone router.
func NewWorld(seed int64) *World {
	loop := sim.New(seed)
	w := &World{
		Loop:    loop,
		Tracer:  trace.New(loop),
		Metrics: metrics.Enable(loop),
		Packets: metrics.TracePackets(loop, 0),
		subnets: make(map[string]*Subnet),
	}
	w.Router = stack.NewHost(loop, "router", stack.Config{})
	w.Router.SetForwarding(true)
	return w
}

// Run advances the simulation by d of virtual time.
func (w *World) Run(d time.Duration) { w.Loop.RunFor(d) }

// AddSubnet creates a broadcast domain over medium m, reachable through
// the router, whose address on it is the subnet's first host address.
func (w *World) AddSubnet(name, cidr string, m Medium) (*Subnet, error) {
	pfx, err := ip.ParsePrefix(cidr)
	if err != nil {
		return nil, err
	}
	if _, dup := w.subnets[name]; dup {
		return nil, fmt.Errorf("mosquitonet: subnet %q already exists", name)
	}
	gw, err := pfx.Nth(1)
	if err != nil {
		return nil, err
	}
	n := link.NewNetwork(w.Loop, name, m)
	d := link.NewDevice(w.Loop, "r-"+name, 0, 0)
	d.Attach(n)
	d.BringUp(nil)
	// Radio and serial media run Starmode-style without ARP.
	p2p := m.Name == "radio" || m.Name == "serial"
	ifc := w.Router.AddIface("r-"+name, d, gw, pfx, stack.IfaceOpts{PointToPoint: p2p})
	w.Router.ConnectRoute(ifc)
	sn := &Subnet{Name: name, Net: n, Prefix: pfx, Gateway: gw, world: w}
	w.subnets[name] = sn
	w.Loop.RunFor(0)
	return sn, nil
}

// Host adds an ordinary host at the subnet's n-th host address (n >= 2,
// since #1 is the router).
func (sn *Subnet) Host(name string, n int) (*EndHost, error) {
	addr, err := sn.Prefix.Nth(n)
	if err != nil {
		return nil, err
	}
	h := stack.NewHost(sn.world.Loop, name, stack.Config{})
	d := link.NewDevice(sn.world.Loop, name+"-eth", 0, 0)
	d.Attach(sn.Net)
	d.BringUp(nil)
	ifc := h.AddIface("eth0", d, addr, sn.Prefix, stack.IfaceOpts{})
	h.ConnectRoute(ifc)
	h.AddDefaultRoute(sn.Gateway, ifc)
	sn.world.Loop.RunFor(0)
	return &EndHost{Host: h, TS: transport.NewStack(h), Iface: ifc, Addr: addr}, nil
}

// DHCP starts a DHCP server on the subnet (hosted on a dedicated machine
// at host #2 unless occupied, then #3, ...), leasing host addresses
// [firstHost, lastHost].
func (sn *Subnet) DHCP(firstHost, lastHost int) (*DHCPServer, error) {
	srvHost, err := sn.Host("dhcp-"+sn.Name, firstHost-1)
	if err != nil {
		return nil, err
	}
	return NewDHCPServer(srvHost.TS, DHCPServerConfig{
		Pool:      sn.Prefix,
		FirstHost: firstHost,
		LastHost:  lastHost,
		Gateway:   sn.Gateway,
	})
}

// HomeAgent starts a home agent for this subnet on a dedicated host at the
// n-th host address.
func (sn *Subnet) HomeAgent(n int) (*HomeAgent, error) {
	haHost, err := sn.Host("ha-"+sn.Name, n)
	if err != nil {
		return nil, err
	}
	return mip.NewHomeAgent(haHost.TS, mip.HomeAgentConfig{
		HomeIface:  haHost.Iface,
		HomePrefix: sn.Prefix,
		Tracer:     sn.world.Tracer,
	})
}

// ForeignAgent starts a foreign agent on this subnet at the n-th host
// address.
func (sn *Subnet) ForeignAgent(n int) (*ForeignAgent, error) {
	faHost, err := sn.Host("fa-"+sn.Name, n)
	if err != nil {
		return nil, err
	}
	return mip.NewForeignAgent(faHost.TS, mip.ForeignAgentConfig{
		Iface:  faHost.Iface,
		Tracer: sn.world.Tracer,
	})
}

// MobileHost creates a mobile host whose permanent address is the home
// subnet's n-th host address and whose home agent is at agent.
func (w *World) MobileHost(name string, home *Subnet, n int, agent Addr) (*MobileNode, error) {
	homeAddr, err := home.Prefix.Nth(n)
	if err != nil {
		return nil, err
	}
	h := stack.NewHost(w.Loop, name, stack.Config{})
	ts := transport.NewStack(h)
	m := mip.NewMobileHost(ts, mip.MobileHostConfig{
		HomeAddr:   homeAddr,
		HomePrefix: home.Prefix,
		HomeAgent:  agent,
		Tracer:     w.Tracer,
	})
	return &MobileNode{MH: m, TS: ts}, nil
}

// WiredInterface adds a managed Ethernet-style interface to the mobile
// host, attached to sn (DHCP-configured on foreign subnets).
func (mn *MobileNode) WiredInterface(name string, sn *Subnet) (*ManagedIface, error) {
	d := link.NewDevice(mn.MH.Host().Loop(), name, 0, 0)
	d.Attach(sn.Net)
	return mn.MH.AddInterface(name, d, false, nil)
}

// StaticInterface adds a managed interface with a fixed foreign
// configuration at sn's n-th host address (radio-style subnets).
func (mn *MobileNode) StaticInterface(name string, sn *Subnet, n int, pointToPoint bool) (*ManagedIface, error) {
	addr, err := sn.Prefix.Nth(n)
	if err != nil {
		return nil, err
	}
	d := link.NewDevice(mn.MH.Host().Loop(), name, 0, 0)
	d.Attach(sn.Net)
	return mn.MH.AddInterface(name, d, pointToPoint, &mip.StaticConfig{
		Addr:    addr,
		Prefix:  sn.Prefix,
		Gateway: sn.Gateway,
	})
}

// MoveInterface reattaches a managed interface's device to another subnet
// (carrying the machine somewhere else). Reconnect with ColdSwitch or
// ConnectForeign afterwards.
func (mn *MobileNode) MoveInterface(mi *ManagedIface, to *Subnet) {
	mi.Iface().Device().Detach()
	mi.Iface().Device().Attach(to.Net)
}
