package mosquitonet

import (
	"testing"
	"time"
)

// TestWorldEndToEnd drives the public API the way the quickstart example
// does: build an internetwork, attach the mobile-IP entities, move the
// mobile host, and verify traffic follows it.
func TestWorldEndToEnd(t *testing.T) {
	w := NewWorld(7)
	home, err := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	café, err := w.AddSubnet("cafe", "10.2.0.0/24", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddSubnet("cafe", "10.3.0.0/24", Ethernet()); err == nil {
		t.Fatal("duplicate subnet accepted")
	}

	ha, err := home.HomeAgent(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := café.DHCP(100, 120); err != nil {
		t.Fatal(err)
	}
	ch, err := café.Host("ch", 50)
	if err != nil {
		t.Fatal(err)
	}

	mn, err := w.MobileHost("laptop", home, 7, ha.Addr())
	if err != nil {
		t.Fatal(err)
	}
	eth0, err := mn.WiredInterface("eth0", home)
	if err != nil {
		t.Fatal(err)
	}
	eth1, err := mn.WiredInterface("eth1", café)
	if err != nil {
		t.Fatal(err)
	}

	// Start at home.
	homeDone := false
	mn.MH.ConnectHome(eth0, home.Gateway, func(err error) {
		if err != nil {
			t.Errorf("ConnectHome: %v", err)
		}
		homeDone = true
	})
	w.Run(5 * time.Second)
	if !homeDone || !mn.MH.AtHome() {
		t.Fatal("did not attach at home")
	}

	// Echo server on the correspondent.
	var served int
	var lastFrom Addr
	var srv *UDPSocket
	srv, err = ch.TS.UDP(Unspecified, 7, func(d Datagram) {
		served++
		lastFrom = d.From
		srv.SendTo(d.From, d.FromPort, d.Payload)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Move to the café and talk to the correspondent.
	moved := false
	mn.MH.ColdSwitch(eth1, func(err error) {
		if err != nil {
			t.Errorf("ColdSwitch: %v", err)
		}
		moved = true
	})
	w.Run(15 * time.Second)
	if !moved || mn.MH.AtHome() {
		t.Fatal("move failed")
	}
	if !café.Prefix.Contains(mn.MH.CareOf()) {
		t.Fatalf("care-of %v not on the café subnet", mn.MH.CareOf())
	}

	echoed := 0
	cli, err := mn.TS.UDP(Unspecified, 0, func(Datagram) { echoed++ })
	if err != nil {
		t.Fatal(err)
	}
	cli.SendTo(ch.Addr, 7, []byte("hello from the road"))
	w.Run(5 * time.Second)
	if served != 1 || echoed != 1 {
		t.Fatalf("served=%d echoed=%d", served, echoed)
	}
	if lastFrom != mn.MH.HomeAddr() {
		t.Fatalf("correspondent saw %v, want the home address", lastFrom)
	}

	// Radio-style subnet via StaticInterface.
	field, err := w.AddSubnet("field", "10.9.0.0/24", Radio())
	if err != nil {
		t.Fatal(err)
	}
	strip, err := mn.StaticInterface("strip0", field, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	mnMoved := false
	mn.MH.ColdSwitch(strip, func(err error) {
		if err != nil {
			t.Errorf("radio switch: %v", err)
		}
		mnMoved = true
	})
	w.Run(20 * time.Second)
	if !mnMoved {
		t.Fatal("radio switch failed")
	}
	cli.SendTo(ch.Addr, 7, []byte("over the air"))
	w.Run(10 * time.Second)
	if served != 2 {
		t.Fatal("radio-path traffic failed")
	}

	// MoveInterface carries the wired card elsewhere.
	mn.MoveInterface(eth1, home)
	if eth1.Iface().Device().Network() != home.Net {
		t.Fatal("MoveInterface did not reattach")
	}
}

func TestWorldBadInputs(t *testing.T) {
	w := NewWorld(1)
	if _, err := w.AddSubnet("x", "not-cidr", Ethernet()); err == nil {
		t.Fatal("bad CIDR accepted")
	}
	sn, err := w.AddSubnet("x", "10.0.0.0/30", Ethernet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Host("h", 99); err == nil {
		t.Fatal("out-of-range host accepted")
	}
}

// TestDNSNameStableAcrossMoves demonstrates the reason MosquitoNet keeps a
// permanent home address: a name resolved once stays valid through every
// move. The correspondent resolves the laptop's name, then keeps using the
// answer while the laptop roams.
func TestDNSNameStableAcrossMoves(t *testing.T) {
	w := NewWorld(3)
	home, _ := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	away, _ := w.AddSubnet("away", "10.2.0.0/24", Ethernet())
	ha, err := home.HomeAgent(2)
	if err != nil {
		t.Fatal(err)
	}
	away.DHCP(100, 120)

	laptop, _ := w.MobileHost("laptop", home, 7, ha.Addr())
	eth0, _ := laptop.WiredInterface("eth0", home)
	eth1, _ := laptop.WiredInterface("eth1", away)

	// DNS service on the home subnet knows the laptop by name.
	dnsHost, err := home.Host("dns", 53)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDNSServer(dnsHost.TS, DNSServerConfig{
		Zone: map[string]Addr{"laptop.mosquito.edu": laptop.MH.HomeAddr()},
	}); err != nil {
		t.Fatal(err)
	}

	ch, _ := away.Host("ch", 50)
	resolver := NewDNSResolver(ch.TS, dnsHost.Addr, DNSResolverConfig{})

	laptop.MH.ConnectHome(eth0, home.Gateway, nil)
	w.Run(3 * time.Second)

	var resolved Addr
	resolver.Resolve("laptop.mosquito.edu", func(a Addr, err error) {
		if err != nil {
			t.Errorf("resolve: %v", err)
		}
		resolved = a
	})
	w.Run(3 * time.Second)
	if resolved != laptop.MH.HomeAddr() {
		t.Fatalf("resolved %v", resolved)
	}

	// Reach the laptop by its resolved name, at home and then away.
	got := 0
	laptop.TS.UDP(Unspecified, 4000, func(Datagram) { got++ })
	chSock, _ := ch.TS.UDP(Unspecified, 0, nil)
	chSock.SendTo(resolved, 4000, []byte("at home"))
	w.Run(3 * time.Second)

	laptop.MH.ColdSwitch(eth1, nil)
	w.Run(10 * time.Second)
	if laptop.MH.AtHome() {
		t.Fatal("move failed")
	}
	chSock.SendTo(resolved, 4000, []byte("still the same name"))
	w.Run(3 * time.Second)
	if got != 2 {
		t.Fatalf("delivered %d of 2 via the resolved name", got)
	}
}

// TestRoamerPublicAPI exercises the automatic switch monitor through the
// façade.
func TestRoamerPublicAPI(t *testing.T) {
	w := NewWorld(4)
	home, _ := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	backup, _ := w.AddSubnet("backup", "10.2.0.0/24", Ethernet())
	ha, _ := home.HomeAgent(2)
	backup.DHCP(100, 120)
	laptop, _ := w.MobileHost("laptop", home, 7, ha.Addr())
	eth0, _ := laptop.WiredInterface("eth0", home)
	eth1, _ := laptop.WiredInterface("eth1", backup)
	laptop.MH.ConnectHome(eth0, home.Gateway, nil)
	w.Run(3 * time.Second)

	r := NewRoamer(laptop.MH, RoamerConfig{
		ProbeInterval: 500 * time.Millisecond,
		FailThreshold: 2,
	}, []Candidate{
		{Iface: eth0, Home: true, Gateway: home.Gateway},
		{Iface: eth1},
	})
	r.Start()
	defer r.Stop()

	eth0.Iface().Device().Detach() // wire dies
	w.Run(20 * time.Second)
	if laptop.MH.Active() != eth1 || !laptop.MH.Registered() {
		t.Fatalf("roamer did not fail over (stats %+v)", r.Stats())
	}
}

// TestForeignAgentAndCapturePublicAPI drives the foreign-agent extension
// through the façade with a packet capture attached, verifying both the
// protocol flow and the decoder see the expected messages.
func TestForeignAgentAndCapturePublicAPI(t *testing.T) {
	w := NewWorld(9)
	home, _ := w.AddSubnet("home", "10.1.0.0/24", Ethernet())
	visited, _ := w.AddSubnet("visited", "10.2.0.0/24", Ethernet())
	ha, err := home.HomeAgent(2)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := visited.ForeignAgent(2)
	if err != nil {
		t.Fatal(err)
	}

	cap := NewCapture(w.Loop, 0)
	cap.Attach(visited.Net)
	cap.Attach(home.Net)

	laptop, _ := w.MobileHost("laptop", home, 7, ha.Addr())
	wlan, _ := laptop.WiredInterface("wlan0", visited)

	// Discover the agent from its advertisements and register through it.
	done := false
	var regErr error
	laptop.MH.ConnectViaDiscoveredAgent(wlan, 5*time.Second, func(err error) { regErr, done = err, true })
	w.Run(15 * time.Second)
	if !done || regErr != nil {
		t.Fatalf("FA attach via discovery: done=%v err=%v", done, regErr)
	}
	if b, ok := ha.Binding(laptop.MH.HomeAddr()); !ok || b.CareOf != fa.Addr() {
		t.Fatalf("binding %+v ok=%v", b, ok)
	}

	// The capture decoded the protocol conversation.
	if len(cap.Find("mip agent-advert")) == 0 {
		t.Fatalf("no advertisements captured:\n%s", cap)
	}
	if len(cap.Find("mip reg-request")) == 0 {
		t.Fatal("no registration request captured")
	}
	if len(cap.Find("mip reg-reply accepted")) == 0 {
		t.Fatal("no accepted reply captured")
	}

	// Traffic through the agent shows up as nested IP-in-IP on the wire.
	ch, _ := home.Host("ch", 9)
	got := 0
	laptop.TS.UDP(Unspecified, 4000, func(Datagram) { got++ })
	sock, _ := ch.TS.UDP(Unspecified, 0, nil)
	sock.SendTo(laptop.MH.HomeAddr(), 4000, []byte("via the agent"))
	w.Run(5 * time.Second)
	if got != 1 {
		t.Fatal("traffic did not reach the visitor")
	}
	if len(cap.Find("ipip {")) == 0 {
		t.Fatal("no tunneled packet captured")
	}
}
